package throughput

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/sim"
)

func TestPeriodOverlapHandComputed(t *testing.T) {
	// Single interval on one processor, CommHom b=2:
	// cycles: Pin 8/2 = 4, compute 6/3 = 2, send 10/2 = 5 → period 5.
	p := pipeline.MustNew([]float64{6}, []float64{8, 10})
	pl, _ := platform.NewCommHomogeneous([]float64{3}, []float64{0}, 2)
	m := mapping.NewSingleInterval(1, []int{0})
	per, err := PeriodOverlap(p, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	if per != 5 {
		t.Errorf("period = %g, want 5", per)
	}
	// Non-overlap on the same instance: 4 (Pin) vs 8/2+2+5 = 11 → 11.
	perNo, err := PeriodNoOverlap(p, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	if perNo != 11 {
		t.Errorf("no-overlap period = %g, want 11", perNo)
	}
	tput, err := Throughput(p, pl, m)
	if err != nil || tput != 0.2 {
		t.Errorf("throughput = %g (%v), want 0.2", tput, err)
	}
}

func TestPeriodReplicationRaisesInputCycle(t *testing.T) {
	// Two replicas: Pin sends two copies per data set → Pin cycle 8.
	p := pipeline.MustNew([]float64{6}, []float64{8, 1})
	pl, _ := platform.NewCommHomogeneous([]float64{3, 3}, []float64{0.5, 0.5}, 2)
	m1 := mapping.NewSingleInterval(1, []int{0})
	m2 := mapping.NewSingleInterval(1, []int{0, 1})
	p1, _ := PeriodOverlap(p, pl, m1)
	p2, _ := PeriodOverlap(p, pl, m2)
	if p1 != 4 || p2 != 8 {
		t.Errorf("periods = %g, %g; want 4, 8", p1, p2)
	}
}

func TestPeriodValidates(t *testing.T) {
	p := pipeline.Uniform(2, 1, 1)
	pl, _ := platform.NewFullyHomogeneous(2, 1, 1, 0)
	bad := mapping.NewSingleInterval(1, []int{0})
	if _, err := PeriodOverlap(p, pl, bad); err == nil {
		t.Error("invalid mapping accepted by PeriodOverlap")
	}
	if _, err := PeriodNoOverlap(p, pl, bad); err == nil {
		t.Error("invalid mapping accepted by PeriodNoOverlap")
	}
}

// Property: overlap period ≤ no-overlap period ≤ latency (each resource
// cycle is a summand of some processor cycle, which is a summand of the
// latency).
func TestPeriodOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := n + rng.Intn(4)
		p := pipeline.Random(rng, n, 0.5, 10, 0.5, 10)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 20)
		mp := randomIntervalMapping(rng, n, m)
		po, err1 := PeriodOverlap(p, pl, mp)
		ps, err4 := PeriodSustainable(p, pl, mp)
		pn, err2 := PeriodNoOverlap(p, pl, mp)
		lat, err3 := mapping.LatencyEq2(p, pl, mp)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return po <= ps+1e-9 && ps <= pn+1e-9 && pn <= lat+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestSimulatorSteadyState (the substantive validation): streaming many
// data sets through the worst-case simulator, the inter-completion gap
// converges exactly to PeriodOverlap.
func TestSimulatorSteadyState(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := n + rng.Intn(3)
		p := pipeline.Random(rng, n, 0.5, 10, 0.5, 10)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 20)
		mp := randomIntervalMapping(rng, n, m)
		want, err := PeriodOverlap(p, pl, mp)
		if err != nil {
			return false
		}
		const d = 48
		res, err := sim.Run(p, pl, mp, sim.Config{Mode: sim.WorstCase, NumDataSets: d})
		if err != nil {
			return false
		}
		gap := res.DatasetLatencies[d-1] - res.DatasetLatencies[d-2]
		return math.Abs(gap-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func randomIntervalMapping(rng *rand.Rand, n, m int) *mapping.Mapping {
	pCount := 1 + rng.Intn(minInt(n, m))
	bounds := rng.Perm(n - 1)
	if len(bounds) > pCount-1 {
		bounds = bounds[:pCount-1]
	} else {
		pCount = len(bounds) + 1
	}
	for i := 1; i < len(bounds); i++ {
		for j := i; j > 0 && bounds[j] < bounds[j-1]; j-- {
			bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
		}
	}
	mp := &mapping.Mapping{}
	start := 0
	for j := 0; j < pCount; j++ {
		end := n - 1
		if j < pCount-1 {
			end = bounds[j]
		}
		mp.Intervals = append(mp.Intervals, mapping.Interval{First: start, Last: end})
		start = end + 1
	}
	procs := rng.Perm(m)
	mp.Alloc = make([][]int, pCount)
	for j := 0; j < pCount; j++ {
		mp.Alloc[j] = []int{procs[j]}
	}
	for _, u := range procs[pCount:] {
		if rng.Float64() < 0.5 {
			j := rng.Intn(pCount)
			mp.Alloc[j] = append(mp.Alloc[j], u)
		}
	}
	return mp
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRRValidate(t *testing.T) {
	good := &RRMapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Groups:    [][][]int{{{0}}, {{1}, {2, 3}}},
	}
	if err := good.Validate(2, 4); err != nil {
		t.Fatalf("valid RR mapping rejected: %v", err)
	}
	cases := []*RRMapping{
		{},
		{Intervals: []mapping.Interval{{First: 0, Last: 1}}, Groups: [][][]int{{}}},
		{Intervals: []mapping.Interval{{First: 0, Last: 1}}, Groups: [][][]int{{{}}}},
		{Intervals: []mapping.Interval{{First: 0, Last: 1}}, Groups: [][][]int{{{9}}}},
		{Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}}, Groups: [][][]int{{{0}}, {{0}}}},
		{Intervals: []mapping.Interval{{First: 0, Last: 0}}, Groups: [][][]int{{{0}}}}, // misses stage 2
	}
	for i, r := range cases {
		if err := r.Validate(2, 4); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFromMappingFlattenRoundTrip(t *testing.T) {
	m := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 1}, {First: 2, Last: 2}},
		Alloc:     [][]int{{0, 1}, {2}},
	}
	r := FromMapping(m)
	if err := r.Validate(3, 3); err != nil {
		t.Fatal(err)
	}
	back, ok := r.Flatten()
	if !ok {
		t.Fatal("single-group RR mapping did not flatten")
	}
	if back.String() != m.String() {
		t.Errorf("round trip changed mapping: %s vs %s", back, m)
	}
	r.Groups[0] = [][]int{{0}, {1}}
	if _, ok := r.Flatten(); ok {
		t.Error("multi-group mapping flattened")
	}
}

func TestRRString(t *testing.T) {
	r := &RRMapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}},
		Groups:    [][][]int{{{0}, {1, 2}}},
	}
	if got := r.String(); got != "[S1]->{P1|P2,P3}" {
		t.Errorf("String = %q", got)
	}
}

// Property: single-group RR mappings agree with the reliability-only
// evaluators (latency Eq. (2), FP formula, PeriodOverlap).
func TestRRSingleGroupConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := n + rng.Intn(3)
		p := pipeline.Random(rng, n, 0.5, 10, 0.5, 10)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.1, 0.9, 1, 20)
		mp := randomIntervalMapping(rng, n, m)
		r := FromMapping(mp)
		met, err := r.Evaluate(p, pl)
		if err != nil {
			return false
		}
		lat, _ := mapping.LatencyEq2(p, pl, mp)
		fp := mapping.FailureProb(pl, mp)
		per, _ := PeriodOverlap(p, pl, mp)
		return math.Abs(met.Latency-lat) <= 1e-9*math.Max(1, lat) &&
			math.Abs(met.FailureProb-fp) <= 1e-12 &&
			math.Abs(met.Period-per) <= 1e-9*math.Max(1, per)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestRRSplitTradeoff: splitting a replicated group into round-robin
// halves lowers the period but raises the failure probability — the
// paper's announced trade-off, in numbers.
func TestRRSplitTradeoff(t *testing.T) {
	p := pipeline.MustNew([]float64{100}, []float64{1, 1})
	pl, _ := platform.NewCommHomogeneous([]float64{10, 10}, []float64{0.3, 0.3}, 5)
	whole := FromMapping(mapping.NewSingleInterval(1, []int{0, 1}))
	split := &RRMapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}},
		Groups:    [][][]int{{{0}, {1}}},
	}
	mw, err := whole.Evaluate(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := split.Evaluate(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if !(ms.Period < mw.Period) {
		t.Errorf("round-robin did not lower the period: %g vs %g", ms.Period, mw.Period)
	}
	if !(ms.FailureProb > mw.FailureProb) {
		t.Errorf("round-robin did not raise FP: %g vs %g", ms.FailureProb, mw.FailureProb)
	}
	// Hand numbers: whole compute cycle 100/10 = 10; split 100/10/2 = 5.
	if mw.Period != 10 || ms.Period != 5 {
		t.Errorf("periods = %g, %g; want 10, 5", mw.Period, ms.Period)
	}
	// FP: 1-(1-0.09) = 0.09 vs 1-(1-0.3)^2 = 0.51.
	if math.Abs(mw.FailureProb-0.09) > 1e-12 || math.Abs(ms.FailureProb-0.51) > 1e-12 {
		t.Errorf("FPs = %g, %g; want 0.09, 0.51", mw.FailureProb, ms.FailureProb)
	}
}

func TestForEachGroupingCountsBellNumbers(t *testing.T) {
	for _, c := range []struct{ k, bell int }{{1, 1}, {2, 2}, {3, 5}, {4, 15}} {
		procs := make([]int, c.k)
		for i := range procs {
			procs[i] = i
		}
		count := 0
		forEachGrouping(procs, func(groups [][]int) bool {
			total := 0
			for _, g := range groups {
				if len(g) == 0 {
					t.Fatal("empty group enumerated")
				}
				total += len(g)
			}
			if total != c.k {
				t.Fatal("grouping loses processors")
			}
			count++
			return true
		})
		if count != c.bell {
			t.Errorf("k=%d: %d partitions, want Bell=%d", c.k, count, c.bell)
		}
	}
}

func TestMinPeriodUnderConstraints(t *testing.T) {
	p := pipeline.MustNew([]float64{100}, []float64{1, 1})
	pl, _ := platform.NewCommHomogeneous([]float64{10, 10, 10}, []float64{0.3, 0.3, 0.3}, 5)
	// Unconstrained: three singleton groups give compute cycle 10/3.
	res, err := MinPeriodUnderConstraints(p, pl, math.Inf(1), 1, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.Period-10.0/3) > 1e-9 {
		t.Errorf("period = %g, want 10/3", res.Metrics.Period)
	}
	// A tight FP bound forbids round-robin splits: FP ≤ 0.1 requires the
	// full reliability pair {0,1,2}… 1-(1-0.027)=0.027 ≤ 0.1 ✓ single
	// group, period 10.
	res, err = MinPeriodUnderConstraints(p, pl, math.Inf(1), 0.1, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.FailureProb > 0.1+1e-12 {
		t.Errorf("FP %g violates bound", res.Metrics.FailureProb)
	}
	if math.Abs(res.Metrics.Period-10) > 1e-9 {
		t.Errorf("period = %g, want 10 (no split allowed)", res.Metrics.Period)
	}
	// Impossible bounds.
	if _, err := MinPeriodUnderConstraints(p, pl, 0.5, 1, exact.Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestGreedyRRConsistency(t *testing.T) {
	p := pipeline.MustNew([]float64{100}, []float64{1, 1})
	pl, _ := platform.NewCommHomogeneous([]float64{10, 10, 10, 10}, []float64{0.3, 0.3, 0.3, 0.3}, 5)
	m := mapping.NewSingleInterval(1, []int{0, 1, 2, 3})
	res, err := GreedyRR(context.Background(), p, pl, m, math.Inf(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := FromMapping(m).Evaluate(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Period > base.Period {
		t.Errorf("greedy worsened the period")
	}
	if err := res.Mapping.Validate(1, 4); err != nil {
		t.Fatalf("greedy produced invalid mapping: %v", err)
	}
	// Infeasible start.
	if _, err := GreedyRR(context.Background(), p, pl, m, 0.1, 1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestTriPareto(t *testing.T) {
	p := pipeline.MustNew([]float64{10, 10}, []float64{1, 1, 1})
	pl, _ := platform.NewCommHomogeneous([]float64{2, 4, 8}, []float64{0.1, 0.3, 0.5}, 2)
	front, err := TriPareto(p, pl, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if front.Len() < 3 {
		t.Fatalf("front has %d points, want several", front.Len())
	}
	es := front.Entries()
	for i := range es {
		for j := range es {
			if i != j && es[i].Metrics.Dominates(es[j].Metrics) {
				t.Fatalf("front entry %d dominates %d", i, j)
			}
		}
	}
	// Every archived mapping must evaluate to its recorded metrics.
	for _, e := range es {
		met, err := e.Mapping.Evaluate(p, pl)
		if err != nil {
			t.Fatalf("invalid archived mapping: %v", err)
		}
		if math.Abs(met.Period-e.Metrics.Period) > 1e-9 {
			t.Fatal("metrics drifted")
		}
	}
}

func TestTriMetricsDominates(t *testing.T) {
	a := Metrics{Latency: 1, FailureProb: 0.1, Period: 1}
	b := Metrics{Latency: 2, FailureProb: 0.2, Period: 2}
	if !a.Dominates(b) || b.Dominates(a) || a.Dominates(a) {
		t.Error("three-way dominance broken")
	}
	c := Metrics{Latency: 0.5, FailureProb: 0.5, Period: 1}
	if a.Dominates(c) || c.Dominates(a) {
		t.Error("incomparable points misjudged")
	}
}
