package exact

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/frontier"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// This file holds the original unpruned slice-based solvers on top of
// ForEachMapping. They used to be the production fallback for platforms
// beyond the bitmask engine's limits; since the multi-word wide search
// covers every m they survive only as the reference implementations the
// engine (narrow and wide) is property-tested against.

func minLatencyIntervalWide(p *pipeline.Pipeline, pl *platform.Platform, opts Options) (Result, error) {
	best := Result{Metrics: mapping.Metrics{Latency: math.Inf(1)}}
	err := ForEachMapping(p.NumStages(), pl.NumProcs(), opts, func(mp *mapping.Mapping) bool {
		met, err := mapping.Evaluate(p, pl, mp)
		if err != nil {
			return true
		}
		if met.Latency < best.Metrics.Latency {
			best = Result{Mapping: mp.Clone(), Metrics: met}
		}
		return true
	})
	return finishWide(best, err)
}

// finishWide mirrors finish for the slice-based references: a canceled
// run still returns the best mapping seen so far (when any) alongside
// the ErrCanceled error.
func finishWide(best Result, runErr error) (Result, error) {
	if runErr != nil {
		if errors.Is(runErr, ErrCanceled) && best.Mapping != nil {
			return best, runErr
		}
		return Result{}, runErr
	}
	if best.Mapping == nil {
		return Result{}, fmt.Errorf("interval enumeration: %w", ErrInfeasible)
	}
	return best, nil
}

func minFPUnderLatencyWide(p *pipeline.Pipeline, pl *platform.Platform, maxLatency float64, opts Options) (Result, error) {
	best := Result{Metrics: mapping.Metrics{FailureProb: math.Inf(1)}}
	err := ForEachMapping(p.NumStages(), pl.NumProcs(), opts, func(mp *mapping.Mapping) bool {
		met, err := mapping.Evaluate(p, pl, mp)
		if err != nil {
			return true
		}
		if !leqTol(met.Latency, maxLatency) {
			return true
		}
		if met.FailureProb < best.Metrics.FailureProb ||
			(met.FailureProb == best.Metrics.FailureProb && met.Latency < best.Metrics.Latency) {
			best = Result{Mapping: mp.Clone(), Metrics: met}
		}
		return true
	})
	return finishWide(best, err)
}

func minLatencyUnderFPWide(p *pipeline.Pipeline, pl *platform.Platform, maxFailureProb float64, opts Options) (Result, error) {
	best := Result{Metrics: mapping.Metrics{Latency: math.Inf(1)}}
	err := ForEachMapping(p.NumStages(), pl.NumProcs(), opts, func(mp *mapping.Mapping) bool {
		met, err := mapping.Evaluate(p, pl, mp)
		if err != nil {
			return true
		}
		if met.FailureProb > maxFailureProb+1e-12 {
			return true
		}
		if met.Latency < best.Metrics.Latency ||
			(met.Latency == best.Metrics.Latency && met.FailureProb < best.Metrics.FailureProb) {
			best = Result{Mapping: mp.Clone(), Metrics: met}
		}
		return true
	})
	return finishWide(best, err)
}

func paretoFrontWide(p *pipeline.Pipeline, pl *platform.Platform, opts Options) ([]Result, error) {
	front := &frontier.Front{}
	err := ForEachMapping(p.NumStages(), pl.NumProcs(), opts, func(mp *mapping.Mapping) bool {
		met, err := mapping.Evaluate(p, pl, mp)
		if err != nil {
			return true
		}
		front.Insert(met, mp)
		return true
	})
	if err != nil && !errors.Is(err, ErrCanceled) {
		return nil, err
	}
	results := make([]Result, 0, front.Len())
	for _, e := range front.Entries() {
		results = append(results, Result{Mapping: e.Mapping, Metrics: e.Metrics})
	}
	return results, err
}
