package exact

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/workload"
)

func TestBitmaskDPRequiresCommHom(t *testing.T) {
	p, pl := fig34()
	if _, err := ParetoCommHomDP(p, pl, Options{}); err == nil {
		t.Error("fully heterogeneous platform accepted")
	}
}

func fig34() (*pipeline.Pipeline, *platform.Platform) {
	p := pipeline.MustNew([]float64{2, 2}, []float64{100, 100, 100})
	pl, _ := platform.NewFullyHeterogeneous(
		[]float64{1, 1}, []float64{0, 0},
		[][]float64{{0, 100}, {100, 0}},
		[]float64{100, 1}, []float64{1, 100})
	return p, pl
}

func TestBitmaskDPRejectsLargeM(t *testing.T) {
	p := pipeline.Uniform(2, 1, 1)
	pl, _ := platform.NewFullyHomogeneous(MaxBitmaskProcs+1, 1, 1, 0.5)
	if _, err := ParetoCommHomDP(p, pl, Options{}); err == nil {
		t.Error("oversized platform accepted")
	}
}

// TestBitmaskDPFig5 solves the paper's Figure 5 instance by DP: same
// optimum as the enumeration, orders of magnitude fewer states.
func TestBitmaskDPFig5(t *testing.T) {
	p, pl := workload.Fig5()
	res, err := MinFPUnderLatencyDP(p, pl, workload.Fig5LatencyThreshold, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.1)*(1-math.Pow(0.8, 10))
	if math.Abs(res.Metrics.FailureProb-want) > 1e-9 {
		t.Errorf("DP FP = %g, want %g", res.Metrics.FailureProb, want)
	}
	if res.Mapping.NumIntervals() != 2 {
		t.Errorf("DP mapping %v, want 2 intervals", res.Mapping)
	}
	if err := res.Mapping.Validate(2, 11); err != nil {
		t.Fatalf("reconstructed mapping invalid: %v", err)
	}
}

// Property: the DP front equals the enumeration front (same metric sets)
// on random CommHom instances, and every reconstructed mapping evaluates
// to its recorded metrics.
func TestBitmaskDPMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := 2 + rng.Intn(3)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 1+rng.Float64()*3)

		dpFront, err := ParetoCommHomDP(p, pl, Options{})
		if err != nil {
			return false
		}
		enumFront, err := ParetoFront(p, pl, Options{})
		if err != nil {
			return false
		}
		if len(dpFront) != len(enumFront) {
			return false
		}
		for i := range dpFront {
			a, b := dpFront[i].Metrics, enumFront[i].Metrics
			if math.Abs(a.Latency-b.Latency) > 1e-9 || math.Abs(a.FailureProb-b.FailureProb) > 1e-9 {
				return false
			}
			// Reconstructed mapping must reproduce its metrics.
			met, err := mapping.Evaluate(p, pl, dpFront[i].Mapping)
			if err != nil {
				return false
			}
			if math.Abs(met.Latency-a.Latency) > 1e-9 || math.Abs(met.FailureProb-a.FailureProb) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the DP constrained queries agree with the enumeration-based
// ones, including infeasibility.
func TestBitmaskDPQueriesMatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := 2 + rng.Intn(3)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 2)

		L := 1 + rng.Float64()*40
		a, errA := MinFPUnderLatencyDP(p, pl, L, Options{})
		b, errB := MinFPUnderLatency(p, pl, L, Options{})
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA == nil && math.Abs(a.Metrics.FailureProb-b.Metrics.FailureProb) > 1e-9 {
			return false
		}

		F := rng.Float64()
		c, errC := MinLatencyUnderFPDP(p, pl, F, Options{})
		d, errD := MinLatencyUnderFP(p, pl, F, Options{})
		if (errC == nil) != (errD == nil) {
			return false
		}
		if errC == nil && math.Abs(c.Metrics.Latency-d.Metrics.Latency) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBitmaskDPInfeasible(t *testing.T) {
	p := pipeline.Uniform(2, 1, 1)
	pl, _ := platform.NewFullyHomogeneous(2, 1, 1, 0.5)
	if _, err := MinFPUnderLatencyDP(p, pl, 0.001, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	if _, err := MinLatencyUnderFPDP(p, pl, 0.01, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

// TestBitmaskDPPreCanceled: an already-done context must stop the DP
// before it builds anything.
func TestBitmaskDPPreCanceled(t *testing.T) {
	p, pl := workload.Fig5()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ParetoCommHomDP(p, pl, Options{Ctx: ctx}); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled DP returned %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestBitmaskDPCanceledMidRun pins the ROADMAP item this PR closes: the
// DP's layer loop polls the abort flag per subset expansion, so a
// cancellation landing mid-run aborts promptly instead of finishing the
// remaining 3^m sweep (the instance below runs for seconds uncancelled).
func TestBitmaskDPCanceledMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := pipeline.Random(rng, 6, 1, 5, 1, 5)
	pl := platform.RandomCommHomogeneous(rng, 13, 1, 10, 0.05, 0.95, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := ParetoCommHomDP(p, pl, Options{Ctx: ctx})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel returned %v (after %v), want ErrCanceled wrapping context.Canceled", err, elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt abort (uncancelled run needs >2.5s)", elapsed)
	}
}
