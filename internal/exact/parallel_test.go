package exact

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/workload"
)

// Property: the parallel enumeration produces exactly the sequential
// Pareto front (same metric sequence) on random instances, regardless of
// worker count.
func TestParetoFrontParallelMatchesSequential(t *testing.T) {
	f := func(seed int64, workersRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(4)
		workers := 1 + int(workersRaw%7)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)

		seq, err := ParetoFront(p, pl, Options{})
		if err != nil {
			return false
		}
		par, err := ParetoFrontParallel(p, pl, Options{}, workers)
		if err != nil {
			return false
		}
		if len(seq) != len(par) {
			return false
		}
		for i := range seq {
			a, b := seq[i].Metrics, par[i].Metrics
			if math.Abs(a.Latency-b.Latency) > 1e-9 || math.Abs(a.FailureProb-b.FailureProb) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParetoFrontParallelFig5(t *testing.T) {
	p, pl := workload.Fig5()
	front, err := ParetoFrontParallel(p, pl, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The front must contain the paper's two-interval optimum: FP ≈
	// 0.196637 at latency 22.
	want := 1 - (1-0.1)*(1-math.Pow(0.8, 10))
	found := false
	for _, r := range front {
		if math.Abs(r.Metrics.Latency-22) < 1e-9 && math.Abs(r.Metrics.FailureProb-want) < 1e-9 {
			found = true
		}
		// Every front mapping must be valid and reproduce its metrics.
		if err := r.Mapping.Validate(2, 11); err != nil {
			t.Fatalf("front mapping invalid: %v", err)
		}
	}
	if !found {
		t.Error("parallel front misses the Figure 5 optimum")
	}
}

func TestParetoFrontParallelErrors(t *testing.T) {
	// Beyond the bitmask engine's replication limit (m ≤ 62; it previously
	// stopped at 30) the slice fallback enumerates until the budget trips.
	pl, _ := platform.NewFullyHomogeneous(63, 1, 1, 0.5)
	p := pipeline.Uniform(2, 1, 1)
	if _, err := ParetoFrontParallel(p, pl, Options{MaxEnum: 1000}, 2); err == nil {
		t.Error("m=63 with a tiny budget did not report an error")
	}
	if _, err := ParetoFrontParallel(&pipeline.Pipeline{}, pl, Options{MaxEnum: 1000}, 2); err == nil {
		t.Error("empty pipeline accepted")
	}
	// A big-but-supported m trips the enumeration budget instead of
	// running forever.
	pl31, _ := platform.NewFullyHomogeneous(31, 1, 1, 0.5)
	if _, err := ParetoFrontParallel(p, pl31, Options{MaxEnum: 1000}, 2); err == nil {
		t.Error("m=31 with a tiny budget did not report ErrBudget")
	}
}

func TestParetoFrontParallelDefaultWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := pipeline.Random(rng, 2, 1, 5, 1, 5)
	pl := platform.RandomCommHomogeneous(rng, 3, 1, 5, 0.1, 0.9, 2)
	if _, err := ParetoFrontParallel(p, pl, Options{}, 0); err != nil {
		t.Fatalf("default workers: %v", err)
	}
}
