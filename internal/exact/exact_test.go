package exact

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/poly"
)

// countMappings returns the number of valid interval mappings enumerated.
func countMappings(n, m int, repl bool) int {
	count := 0
	ForEachMapping(n, m, Options{Replication: repl}, func(*mapping.Mapping) bool {
		count++
		return true
	})
	return count
}

func TestForEachMappingCountsNoReplication(t *testing.T) {
	// n=1, m=2, no replication: 1 interval on P0 or P1 → 2 mappings.
	if got := countMappings(1, 2, false); got != 2 {
		t.Errorf("count(1,2) = %d, want 2", got)
	}
	// n=2, m=2: p=1 → 2; p=2 → 2 ordered pairs of distinct procs → 2. Total 4.
	if got := countMappings(2, 2, false); got != 4 {
		t.Errorf("count(2,2) = %d, want 4", got)
	}
	// n=2, m=3: p=1 → 3; p=2 → 3·2 = 6. Total 9.
	if got := countMappings(2, 3, false); got != 9 {
		t.Errorf("count(2,3) = %d, want 9", got)
	}
}

func TestForEachMappingCountsWithReplication(t *testing.T) {
	// n=1, m=2 with replication: non-empty subsets of {P0,P1} → 3.
	if got := countMappings(1, 2, true); got != 3 {
		t.Errorf("count(1,2) = %d, want 3", got)
	}
	// n=2, m=2: p=1 → 3 subsets; p=2 → ordered disjoint non-empty pairs:
	// ({0},{1}), ({1},{0}) → 2. Total 5.
	if got := countMappings(2, 2, true); got != 5 {
		t.Errorf("count(2,2) = %d, want 5", got)
	}
	// n=1, m=3: 7 subsets.
	if got := countMappings(1, 3, true); got != 7 {
		t.Errorf("count(1,3) = %d, want 7", got)
	}
}

func TestForEachMappingAllValid(t *testing.T) {
	err := ForEachMapping(3, 4, Options{Replication: true}, func(mp *mapping.Mapping) bool {
		if err := mp.Validate(3, 4); err != nil {
			t.Fatalf("enumerated invalid mapping %v: %v", mp, err)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForEachMappingBudget(t *testing.T) {
	err := ForEachMapping(4, 6, Options{Replication: true, MaxEnum: 10}, func(*mapping.Mapping) bool {
		return true
	})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestForEachMappingEarlyStop(t *testing.T) {
	count := 0
	err := ForEachMapping(3, 3, Options{}, func(*mapping.Mapping) bool {
		count++
		return count < 3
	})
	if err != nil {
		t.Fatalf("early stop returned error: %v", err)
	}
	if count != 3 {
		t.Errorf("visited %d mappings after stop, want 3", count)
	}
}

func TestForEachMappingRejectsBadSizes(t *testing.T) {
	if err := ForEachMapping(0, 3, Options{}, func(*mapping.Mapping) bool { return true }); err == nil {
		t.Error("n=0 accepted")
	}
	if err := ForEachMapping(3, 0, Options{}, func(*mapping.Mapping) bool { return true }); err == nil {
		t.Error("m=0 accepted")
	}
}

// TestMinLatencyFig34: the exhaustive solver reproduces the paper's
// Section 3 example optimum (latency 7 with a split mapping).
func TestMinLatencyFig34(t *testing.T) {
	p := pipeline.MustNew([]float64{2, 2}, []float64{100, 100, 100})
	pl, err := platform.NewFullyHeterogeneous(
		[]float64{1, 1}, []float64{0, 0},
		[][]float64{{0, 100}, {100, 0}},
		[]float64{100, 1}, []float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinLatencyInterval(p, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Latency != 7 {
		t.Errorf("optimal latency = %g, want 7", res.Metrics.Latency)
	}
	if res.Mapping.NumIntervals() != 2 {
		t.Errorf("optimal mapping has %d intervals, want 2", res.Mapping.NumIntervals())
	}
}

// TestMinFPUnderLatencyFig5: the exhaustive solver finds the paper's
// two-interval optimum on the Figure 5 instance.
func TestMinFPUnderLatencyFig5(t *testing.T) {
	p := pipeline.MustNew([]float64{1, 100}, []float64{10, 1, 0})
	speeds := []float64{1}
	fps := []float64{0.1}
	// Use 5 fast processors (not 10) to keep enumeration quick; the best
	// mapping is still slow-stage-on-reliable + full fast replication.
	for i := 0; i < 5; i++ {
		speeds = append(speeds, 100)
		fps = append(fps, 0.8)
	}
	pl, _ := platform.NewCommHomogeneous(speeds, fps, 1)
	res, err := MinFPUnderLatency(p, pl, 22, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantFP := 1 - (1-0.1)*(1-math.Pow(0.8, 5))
	if math.Abs(res.Metrics.FailureProb-wantFP) > 1e-12 {
		t.Errorf("FP = %g, want %g", res.Metrics.FailureProb, wantFP)
	}
	if res.Mapping.NumIntervals() != 2 {
		t.Errorf("optimal mapping has %d intervals, want 2 (CommHom+FailureHet)", res.Mapping.NumIntervals())
	}
}

// Property (Theorem 5): Algorithm 1 and 2 match the exhaustive optimum on
// fully homogeneous platforms.
func TestAlgorithms12MatchExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := 2 + rng.Intn(3)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		pl, _ := platform.NewFullyHomogeneous(m, 1+rng.Float64()*4, 1+rng.Float64()*4, 0.1+0.8*rng.Float64())

		L := 1 + rng.Float64()*30
		got, gotErr := poly.Algorithm1(p, pl, L)
		want, wantErr := MinFPUnderLatency(p, pl, L, Options{})
		if (gotErr == nil) != (wantErr == nil) {
			return false
		}
		if gotErr == nil && math.Abs(got.Metrics.FailureProb-want.Metrics.FailureProb) > 1e-9 {
			return false
		}

		F := rng.Float64()
		got2, gotErr2 := poly.Algorithm2(p, pl, F)
		want2, wantErr2 := MinLatencyUnderFP(p, pl, F, Options{})
		if (gotErr2 == nil) != (wantErr2 == nil) {
			return false
		}
		if gotErr2 == nil && math.Abs(got2.Metrics.Latency-want2.Metrics.Latency) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property (Theorem 6): Algorithm 3 and 4 match the exhaustive optimum on
// CommHom + FailureHom platforms.
func TestAlgorithms34MatchExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := 2 + rng.Intn(3)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		speeds := make([]float64, m)
		fps := make([]float64, m)
		fp := 0.1 + 0.8*rng.Float64()
		for i := range speeds {
			speeds[i] = 1 + rng.Float64()*9
			fps[i] = fp
		}
		pl, _ := platform.NewCommHomogeneous(speeds, fps, 1+rng.Float64()*4)

		L := 1 + rng.Float64()*30
		got, gotErr := poly.Algorithm3(p, pl, L)
		want, wantErr := MinFPUnderLatency(p, pl, L, Options{})
		if (gotErr == nil) != (wantErr == nil) {
			return false
		}
		if gotErr == nil && math.Abs(got.Metrics.FailureProb-want.Metrics.FailureProb) > 1e-9 {
			return false
		}

		F := rng.Float64()
		got2, gotErr2 := poly.Algorithm4(p, pl, F)
		want2, wantErr2 := MinLatencyUnderFP(p, pl, F, Options{})
		if (gotErr2 == nil) != (wantErr2 == nil) {
			return false
		}
		if gotErr2 == nil && math.Abs(got2.Metrics.Latency-want2.Metrics.Latency) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property (Theorem 2): the exhaustive latency optimum on CommHom
// platforms is the fastest single processor.
func TestMinLatencyMatchesTheorem2(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(4)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 10, 0, 1, 1+rng.Float64()*4)
		want, err := poly.MinLatencyCommHom(p, pl)
		if err != nil {
			return false
		}
		got, err := MinLatencyInterval(p, pl, Options{})
		if err != nil {
			return false
		}
		return math.Abs(got.Metrics.Latency-want.Metrics.Latency) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParetoFrontProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := pipeline.Random(rng, 2, 1, 5, 1, 5)
	pl := platform.RandomCommHomogeneous(rng, 4, 1, 10, 0.1, 0.9, 2)
	front, err := ParetoFront(p, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	// Sorted by latency, strictly decreasing FP, mutually non-dominated.
	for i := 1; i < len(front); i++ {
		if front[i].Metrics.Latency < front[i-1].Metrics.Latency {
			t.Error("front not sorted by latency")
		}
		if front[i].Metrics.FailureProb >= front[i-1].Metrics.FailureProb {
			t.Error("front FP not strictly decreasing")
		}
	}
	for i := range front {
		for j := range front {
			if i != j && front[i].Metrics.Dominates(front[j].Metrics) {
				t.Errorf("front[%d] dominates front[%d]", i, j)
			}
		}
	}
	// Extremes agree with the mono-criterion optima.
	minLat, _ := MinLatencyInterval(p, pl, Options{})
	if math.Abs(front[0].Metrics.Latency-minLat.Metrics.Latency) > 1e-9 {
		t.Errorf("front[0] latency %g != optimum %g", front[0].Metrics.Latency, minLat.Metrics.Latency)
	}
	minFP, _ := poly.MinFailureProb(p, pl)
	last := front[len(front)-1]
	if math.Abs(last.Metrics.FailureProb-minFP.Metrics.FailureProb) > 1e-12 {
		t.Errorf("front tail FP %g != optimum %g", last.Metrics.FailureProb, minFP.Metrics.FailureProb)
	}
}

func TestMinLatencyOneToOneSmall(t *testing.T) {
	// Fig 3/4 instance: the one-to-one optimum is the split mapping, 7.
	p := pipeline.MustNew([]float64{2, 2}, []float64{100, 100, 100})
	pl, _ := platform.NewFullyHeterogeneous(
		[]float64{1, 1}, []float64{0, 0},
		[][]float64{{0, 100}, {100, 0}},
		[]float64{100, 1}, []float64{1, 100})
	res, err := MinLatencyOneToOne(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 7 {
		t.Errorf("one-to-one optimum = %g, want 7", res.Latency)
	}
	if !res.Mapping.IsOneToOne() {
		t.Error("result is not one-to-one")
	}
}

func TestMinLatencyOneToOneErrors(t *testing.T) {
	p := pipeline.Uniform(3, 1, 1)
	pl, _ := platform.NewFullyHomogeneous(2, 1, 1, 0)
	if _, err := MinLatencyOneToOne(p, pl); err == nil {
		t.Error("n > m accepted")
	}
	pBig := pipeline.Uniform(11, 1, 1)
	plBig, _ := platform.NewFullyHomogeneous(12, 1, 1, 0)
	if _, err := MinLatencyOneToOne(pBig, plBig); err == nil {
		t.Error("oversized instance accepted")
	}
}

// Property (Theorem 4): the DP shortest path equals the brute-force
// general-mapping optimum.
func TestGeneralBruteMatchesDP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 20)
		brute, err := MinLatencyGeneralBrute(p, pl)
		if err != nil {
			return false
		}
		dp := poly.MinLatencyGeneral(p, pl)
		return math.Abs(brute.Latency-dp.Latency) <= 1e-9*math.Max(1, dp.Latency)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMinLatencyGeneralBruteTooLarge(t *testing.T) {
	p := pipeline.Uniform(30, 1, 1)
	pl, _ := platform.NewFullyHomogeneous(30, 1, 1, 0)
	if _, err := MinLatencyGeneralBrute(p, pl); err == nil {
		t.Error("oversized brute force accepted")
	}
}

// Property: one-to-one optimum ≥ general optimum (one-to-one is a
// restriction), and interval optimum ≥ general optimum.
func TestOptimaOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := n + rng.Intn(3)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 20)
		gen := poly.MinLatencyGeneral(p, pl)
		oto, err := MinLatencyOneToOne(p, pl)
		if err != nil {
			return false
		}
		iv, err := MinLatencyInterval(p, pl, Options{})
		if err != nil {
			return false
		}
		return oto.Latency >= gen.Latency-1e-9 && iv.Metrics.Latency >= gen.Latency-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestInfeasibleThresholds(t *testing.T) {
	p := pipeline.Uniform(2, 1, 1)
	pl, _ := platform.NewFullyHomogeneous(2, 1, 1, 0.5)
	if _, err := MinFPUnderLatency(p, pl, 0.001, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	if _, err := MinLatencyUnderFP(p, pl, 0.01, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible (0.5^2 = 0.25 > 0.01)", err)
	}
}
