package exact

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// The bitmask dynamic program solves the open problem class (CommHom +
// FailureHet) exactly in time exponential in m but polynomial in n —
// orders of magnitude faster than full mapping enumeration when n grows.
//
// State: (next stage i, set of already-used processors). Value: the
// Pareto set of (latency-so-far, log success probability) pairs. A
// transition appends one interval [i, e] replicated on a non-empty subset
// S of the unused processors, paying |S|·δ_i/b + W(i,e)/min_{u∈S} s_u
// latency (Eq. (1) terms) and multiplying the success probability by
// 1 − Π_{u∈S} fp_u. Within a state, dominated pairs cannot lead to
// non-dominated completions (the continuation depends on the state only),
// so they are pruned.

// MaxBitmaskProcs bounds m for the DP (subset enumeration is 3^m).
const MaxBitmaskProcs = 16

type dpEntry struct {
	lat  float64
	logS float64 // log of success probability
	// Reconstruction: the interval that led here and the predecessor.
	prevMask int
	prevIdx  int
	subset   int
	start    int
}

// bitmaskDP builds the full DP table and returns the global Pareto set of
// complete mappings as (entries at layer n, per mask) flattened, already
// including the final δ_n/b term.
//
// The layer loop is interruptible: when opts.Ctx carries a cancelable
// context, a watcher goroutine flips an abort flag the transition loop
// checks per (mask, subset) pair, so cancellation latency is one subset
// expansion rather than a full 3^m sweep. A canceled run returns
// ErrCanceled wrapping the context's cause (the DP has no usable partial
// answer — complete mappings only materialize once the last layer is
// reached).
func bitmaskDP(p *pipeline.Pipeline, pl *platform.Platform, opts Options) ([]Result, error) {
	b, ok := pl.CommHomogeneous()
	if !ok {
		return nil, fmt.Errorf("exact: the bitmask DP requires a communication-homogeneous platform")
	}
	n, m := p.NumStages(), pl.NumProcs()
	if m > MaxBitmaskProcs {
		return nil, fmt.Errorf("exact: bitmask DP supports m ≤ %d, got %d", MaxBitmaskProcs, m)
	}
	var abort atomic.Bool
	var stopWatch chan struct{}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, canceledErr(opts.Ctx)
		}
		if done := opts.Ctx.Done(); done != nil {
			stopWatch = make(chan struct{})
			defer close(stopWatch)
			go func() {
				select {
				case <-done:
					abort.Store(true)
				case <-stopWatch:
				}
			}()
		}
	}

	full := 1 << m
	// Precompute per subset: min speed and failure product.
	minSpeed := make([]float64, full)
	prodFP := make([]float64, full)
	prodFP[0] = 1
	for s := 1; s < full; s++ {
		low := bits.TrailingZeros(uint(s))
		rest := s &^ (1 << low)
		if rest == 0 {
			minSpeed[s] = pl.Speed[low]
			prodFP[s] = pl.FailProb[low]
		} else {
			minSpeed[s] = math.Min(pl.Speed[low], minSpeed[rest])
			prodFP[s] = pl.FailProb[low] * prodFP[rest]
		}
	}

	// dp[i] maps used-mask → Pareto entries.
	dp := make([]map[int][]dpEntry, n+1)
	for i := range dp {
		dp[i] = make(map[int][]dpEntry)
	}
	dp[0][0] = []dpEntry{{lat: 0, logS: 0, prevMask: -1}}

	insert := func(layer map[int][]dpEntry, mask int, e dpEntry) {
		entries := layer[mask]
		for _, x := range entries {
			if x.lat <= e.lat && x.logS >= e.logS {
				return // dominated (or equal)
			}
		}
		keep := entries[:0]
		for _, x := range entries {
			if !(e.lat <= x.lat && e.logS >= x.logS) {
				keep = append(keep, x)
			}
		}
		layer[mask] = append(keep, e)
	}

	for i := 0; i < n; i++ {
		for mask, entries := range dp[i] {
			if len(entries) == 0 {
				continue
			}
			free := (full - 1) &^ mask
			if free == 0 {
				continue // no processors left for the remaining stages
			}
			for sub := free; sub > 0; sub = (sub - 1) & free {
				if abort.Load() {
					return nil, canceledErr(opts.Ctx)
				}
				k := float64(bits.OnesCount(uint(sub)))
				commIn := k * p.Delta[i] / b
				logTerm := math.Log1p(-prodFP[sub]) // log(1 − Π fp); −Inf if product is 1
				for e := i; e < n; e++ {
					work := p.Work(i, e) / minSpeed[sub]
					for idx, ent := range entries {
						insert(dp[e+1], mask|sub, dpEntry{
							lat:      ent.lat + commIn + work,
							logS:     ent.logS + logTerm,
							prevMask: mask,
							prevIdx:  idx,
							subset:   sub,
							start:    i,
						})
					}
				}
			}
		}
	}

	// Collect complete mappings, add the final output transfer, build the
	// global Pareto set with reconstruction.
	out := p.Delta[n] / b
	var results []Result
	var metrics []mapping.Metrics
	for mask, entries := range dp[n] {
		for idx, ent := range entries {
			met := mapping.Metrics{
				Latency:     ent.lat + out,
				FailureProb: -math.Expm1(ent.logS),
			}
			dominated := false
			for _, other := range metrics {
				if other == met || other.Dominates(met) {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			keepR := results[:0]
			keepM := metrics[:0]
			for i2, other := range metrics {
				if !met.Dominates(other) {
					keepR = append(keepR, results[i2])
					keepM = append(keepM, other)
				}
			}
			results, metrics = keepR, keepM
			mp := reconstruct(dp, n, mask, idx)
			// Report the canonical evaluator's metrics for the
			// reconstructed mapping (the DP's log-space accumulation can
			// differ in the last ulp); dominance above used the DP values.
			canonical, err := mapping.Evaluate(p, pl, mp)
			if err != nil {
				return nil, err
			}
			results = append(results, Result{Mapping: mp, Metrics: canonical})
			metrics = append(metrics, met)
		}
	}
	sortResultsByLatency(results)
	return results, nil
}

// reconstruct walks the parent pointers from dp[n][mask][idx] back to the
// initial state and rebuilds the interval mapping.
func reconstruct(dp []map[int][]dpEntry, layer, mask, idx int) *mapping.Mapping {
	var revIntervals []mapping.Interval
	var revAlloc [][]int
	for layer > 0 {
		ent := dp[layer][mask][idx]
		var procs []int
		for u := 0; u < 64; u++ {
			if ent.subset&(1<<u) != 0 {
				procs = append(procs, u)
			}
		}
		revIntervals = append(revIntervals, mapping.Interval{First: ent.start, Last: layer - 1})
		revAlloc = append(revAlloc, procs)
		layer, mask, idx = ent.start, ent.prevMask, ent.prevIdx
	}
	m := &mapping.Mapping{}
	for i := len(revIntervals) - 1; i >= 0; i-- {
		m.Intervals = append(m.Intervals, revIntervals[i])
		m.Alloc = append(m.Alloc, revAlloc[i])
	}
	return m
}

// ParetoCommHomDP computes the exact (latency, FP) Pareto front over all
// interval mappings of a Communication Homogeneous platform with the
// bitmask dynamic program (m ≤ MaxBitmaskProcs). It matches ParetoFront
// exactly but runs in O(n²·3^m) instead of enumerating every mapping.
// Only opts.Ctx is honored (the DP is sequential and needs no budget:
// pruned subtrees don't exist, the table is polynomial in n).
func ParetoCommHomDP(p *pipeline.Pipeline, pl *platform.Platform, opts Options) ([]Result, error) {
	return bitmaskDP(p, pl, opts)
}

// MinFPUnderLatencyDP answers "minimize FP subject to latency ≤ L" from
// the DP front.
func MinFPUnderLatencyDP(p *pipeline.Pipeline, pl *platform.Platform, maxLatency float64, opts Options) (Result, error) {
	front, err := bitmaskDP(p, pl, opts)
	if err != nil {
		return Result{}, err
	}
	best := Result{Metrics: mapping.Metrics{FailureProb: math.Inf(1)}}
	for _, r := range front {
		if leqTol(r.Metrics.Latency, maxLatency) && r.Metrics.FailureProb < best.Metrics.FailureProb {
			best = r
		}
	}
	if best.Mapping == nil {
		return Result{}, ErrInfeasible
	}
	return best, nil
}

// MinLatencyUnderFPDP answers "minimize latency subject to FP ≤ F" from
// the DP front.
func MinLatencyUnderFPDP(p *pipeline.Pipeline, pl *platform.Platform, maxFailProb float64, opts Options) (Result, error) {
	front, err := bitmaskDP(p, pl, opts)
	if err != nil {
		return Result{}, err
	}
	best := Result{Metrics: mapping.Metrics{Latency: math.Inf(1)}}
	for _, r := range front {
		if r.Metrics.FailureProb <= maxFailProb+1e-12 && r.Metrics.Latency < best.Metrics.Latency {
			best = r
		}
	}
	if best.Mapping == nil {
		return Result{}, ErrInfeasible
	}
	return best, nil
}
