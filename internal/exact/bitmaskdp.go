package exact

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// The bitmask dynamic program solves the open problem class (CommHom +
// FailureHet) exactly in time exponential in m but polynomial in n —
// orders of magnitude faster than full mapping enumeration when n grows.
//
// State: (next stage i, set of already-used processors). Value: the
// Pareto set of (latency-so-far, log success probability) pairs. A
// transition appends one interval [i, e] replicated on a non-empty subset
// S of the unused processors, paying |S|·δ_i/b + W(i,e)/min_{u∈S} s_u
// latency (Eq. (1) terms) and multiplying the success probability by
// 1 − Π_{u∈S} fp_u. Within a state, dominated pairs cannot lead to
// non-dominated completions (the continuation depends on the state only),
// so they are pruned.

// MaxBitmaskProcs bounds m for the DP (subset enumeration is 3^m).
const MaxBitmaskProcs = 16

type dpEntry struct {
	lat  float64
	logS float64 // log of success probability
	// Reconstruction: the interval that led here and the predecessor.
	prevMask int
	prevIdx  int
	subset   int
	start    int
}

// bitmaskDP builds the full DP table and returns the global Pareto set of
// complete mappings as (entries at layer n, per mask) flattened, already
// including the final δ_n/b term.
//
// maxLatency, when finite, caps the latency the caller will accept
// (MinFPUnderLatencyDP's constraint): transitions whose partial latency
// plus the suffix memo's exact best-case completion provably exceed the
// cap — beyond twice the shared latency tolerance, double the slack of
// the final leqTol filter — are dropped at insert time instead of
// populating layers they can never survive. The answer is unchanged: a
// dropped entry's every completion fails the final filter, and within a
// state any entry it dominated has no smaller latency over the same
// completion options, so it is dropped by the same test — pruning never
// removes a dominance shield from a feasible entry. Callers wanting the
// full front pass math.Inf(1), which disables the memo entirely.
//
// The layer loop is interruptible: when opts.Ctx carries a cancelable
// context, a watcher goroutine flips an abort flag the transition loop
// checks per (mask, subset) pair, so cancellation latency is one subset
// expansion rather than a full 3^m sweep. A canceled run returns
// ErrCanceled wrapping the context's cause (the DP has no usable partial
// answer — complete mappings only materialize once the last layer is
// reached).
func bitmaskDP(p *pipeline.Pipeline, pl *platform.Platform, opts Options, maxLatency float64) ([]Result, error) {
	b, ok := pl.CommHomogeneous()
	if !ok {
		return nil, fmt.Errorf("exact: the bitmask DP requires a communication-homogeneous platform")
	}
	n, m := p.NumStages(), pl.NumProcs()
	if m > MaxBitmaskProcs {
		return nil, fmt.Errorf("exact: bitmask DP supports m ≤ %d, got %d", MaxBitmaskProcs, m)
	}
	var abort atomic.Bool
	var stopWatch chan struct{}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, canceledErr(opts.Ctx)
		}
		if done := opts.Ctx.Done(); done != nil {
			stopWatch = make(chan struct{})
			defer close(stopWatch)
			go func() {
				select {
				case <-done:
					abort.Store(true)
				case <-stopWatch:
				}
			}()
		}
	}

	full := 1 << m
	// Precompute per subset: min speed and failure product.
	minSpeed := make([]float64, full)
	prodFP := make([]float64, full)
	prodFP[0] = 1
	for s := 1; s < full; s++ {
		low := bits.TrailingZeros(uint(s))
		rest := s &^ (1 << low)
		if rest == 0 {
			minSpeed[s] = pl.Speed[low]
			prodFP[s] = pl.FailProb[low]
		} else {
			minSpeed[s] = math.Min(pl.Speed[low], minSpeed[rest])
			prodFP[s] = pl.FailProb[low] * prodFP[rest]
		}
	}

	// Latency-cap pruning state: the suffix memo answers "best possible
	// completion of stages [e+1, n) over the processors still free".
	var sm *SuffixMemo
	var fullIdx int64
	var latCap float64
	if !math.IsInf(maxLatency, 1) {
		sm = opts.SuffixMemo
		if sm == nil || sm.n != n || sm.m != m {
			sm = NewSuffixMemo(p, pl, 0)
		}
		if sm != nil {
			fullIdx = sm.FullIdx()
			latCap = maxLatency + 2*latencyTol*math.Max(1, math.Abs(maxLatency))
		}
	}

	// dp[i] maps used-mask → Pareto entries.
	dp := make([]map[int][]dpEntry, n+1)
	for i := range dp {
		dp[i] = make(map[int][]dpEntry)
	}
	dp[0][0] = []dpEntry{{lat: 0, logS: 0, prevMask: -1}}

	insert := func(layer map[int][]dpEntry, mask int, e dpEntry) {
		entries := layer[mask]
		for _, x := range entries {
			if x.lat <= e.lat && x.logS >= e.logS {
				return // dominated (or equal)
			}
		}
		keep := entries[:0]
		for _, x := range entries {
			if !(e.lat <= x.lat && e.logS >= x.logS) {
				keep = append(keep, x)
			}
		}
		layer[mask] = append(keep, e)
	}

	for i := 0; i < n; i++ {
		for mask, entries := range dp[i] {
			if len(entries) == 0 {
				continue
			}
			free := (full - 1) &^ mask
			if free == 0 {
				continue // no processors left for the remaining stages
			}
			var maskW int64
			if sm != nil {
				for t := mask; t != 0; t &= t - 1 {
					maskW += sm.weight[bits.TrailingZeros(uint(t))]
				}
			}
			for sub := free; sub > 0; sub = (sub - 1) & free {
				if abort.Load() {
					return nil, canceledErr(opts.Ctx)
				}
				var freeIdx int64
				if sm != nil {
					subW := int64(0)
					for t := sub; t != 0; t &= t - 1 {
						subW += sm.weight[bits.TrailingZeros(uint(t))]
					}
					freeIdx = fullIdx - maskW - subW
				}
				k := float64(bits.OnesCount(uint(sub)))
				commIn := k * p.Delta[i] / b
				logTerm := math.Log1p(-prodFP[sub]) // log(1 − Π fp); −Inf if product is 1
				for e := i; e < n; e++ {
					work := p.Work(i, e) / minSpeed[sub]
					var suffix float64
					if sm != nil {
						// Best-case completion of stages [e+1, n) over the
						// remaining free set: exact without replication,
						// hence a valid lower bound for the DP's replicated
						// transitions too (δ_n/b when e+1 == n; +Inf when the
						// set is empty, which prunes the dead state exactly).
						suffix = sm.Lookup(e+1, freeIdx)
					}
					for idx, ent := range entries {
						lat := ent.lat + commIn + work
						if sm != nil && lat+suffix > latCap {
							continue
						}
						insert(dp[e+1], mask|sub, dpEntry{
							lat:      lat,
							logS:     ent.logS + logTerm,
							prevMask: mask,
							prevIdx:  idx,
							subset:   sub,
							start:    i,
						})
					}
				}
			}
		}
	}

	// Collect complete mappings, add the final output transfer, build the
	// global Pareto set with reconstruction.
	out := p.Delta[n] / b
	var results []Result
	var metrics []mapping.Metrics
	for mask, entries := range dp[n] {
		for idx, ent := range entries {
			met := mapping.Metrics{
				Latency:     ent.lat + out,
				FailureProb: -math.Expm1(ent.logS),
			}
			dominated := false
			for _, other := range metrics {
				if other == met || other.Dominates(met) {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			keepR := results[:0]
			keepM := metrics[:0]
			for i2, other := range metrics {
				if !met.Dominates(other) {
					keepR = append(keepR, results[i2])
					keepM = append(keepM, other)
				}
			}
			results, metrics = keepR, keepM
			mp := reconstruct(dp, n, mask, idx)
			// Report the canonical evaluator's metrics for the
			// reconstructed mapping (the DP's log-space accumulation can
			// differ in the last ulp); dominance above used the DP values.
			canonical, err := mapping.Evaluate(p, pl, mp)
			if err != nil {
				return nil, err
			}
			results = append(results, Result{Mapping: mp, Metrics: canonical})
			metrics = append(metrics, met)
		}
	}
	sortResultsByLatency(results)
	return results, nil
}

// reconstruct walks the parent pointers from dp[n][mask][idx] back to the
// initial state and rebuilds the interval mapping.
func reconstruct(dp []map[int][]dpEntry, layer, mask, idx int) *mapping.Mapping {
	var revIntervals []mapping.Interval
	var revAlloc [][]int
	for layer > 0 {
		ent := dp[layer][mask][idx]
		var procs []int
		for u := 0; u < 64; u++ {
			if ent.subset&(1<<u) != 0 {
				procs = append(procs, u)
			}
		}
		revIntervals = append(revIntervals, mapping.Interval{First: ent.start, Last: layer - 1})
		revAlloc = append(revAlloc, procs)
		layer, mask, idx = ent.start, ent.prevMask, ent.prevIdx
	}
	m := &mapping.Mapping{}
	for i := len(revIntervals) - 1; i >= 0; i-- {
		m.Intervals = append(m.Intervals, revIntervals[i])
		m.Alloc = append(m.Alloc, revAlloc[i])
	}
	return m
}

// ParetoCommHomDP computes the exact (latency, FP) Pareto front over all
// interval mappings of a Communication Homogeneous platform with the
// bitmask dynamic program (m ≤ MaxBitmaskProcs). It matches ParetoFront
// exactly but runs in O(n²·3^m) instead of enumerating every mapping.
// Only opts.Ctx is honored (the DP is sequential and needs no budget:
// pruned subtrees don't exist, the table is polynomial in n).
func ParetoCommHomDP(p *pipeline.Pipeline, pl *platform.Platform, opts Options) ([]Result, error) {
	return bitmaskDP(p, pl, opts, math.Inf(1))
}

// MinFPUnderLatencyDP answers "minimize FP subject to latency ≤ L" from
// the DP front. The latency cap is pushed into the DP itself: suffix-memo
// bounds (opts.SuffixMemo when provided, a private memo otherwise) drop
// transitions that provably cannot meet it, shrinking the table without
// changing the answer.
func MinFPUnderLatencyDP(p *pipeline.Pipeline, pl *platform.Platform, maxLatency float64, opts Options) (Result, error) {
	front, err := bitmaskDP(p, pl, opts, maxLatency)
	if err != nil {
		return Result{}, err
	}
	best := Result{Metrics: mapping.Metrics{FailureProb: math.Inf(1)}}
	for _, r := range front {
		if leqTol(r.Metrics.Latency, maxLatency) && r.Metrics.FailureProb < best.Metrics.FailureProb {
			best = r
		}
	}
	if best.Mapping == nil {
		return Result{}, ErrInfeasible
	}
	return best, nil
}

// MinLatencyUnderFPDP answers "minimize latency subject to FP ≤ F" from
// the DP front.
func MinLatencyUnderFPDP(p *pipeline.Pipeline, pl *platform.Platform, maxFailProb float64, opts Options) (Result, error) {
	front, err := bitmaskDP(p, pl, opts, math.Inf(1))
	if err != nil {
		return Result{}, err
	}
	best := Result{Metrics: mapping.Metrics{Latency: math.Inf(1)}}
	for _, r := range front {
		if r.Metrics.FailureProb <= maxFailProb+1e-12 && r.Metrics.Latency < best.Metrics.Latency {
			best = r
		}
	}
	if best.Mapping == nil {
		return Result{}, ErrInfeasible
	}
	return best, nil
}
