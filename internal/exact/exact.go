// Package exact provides exponential-time exhaustive solvers used as
// ground truth on small instances: they enumerate every interval mapping
// (optionally with replication), every one-to-one mapping, or every
// general mapping, and optimize either criterion under a threshold on the
// other. The polynomial algorithms of package poly and the heuristics of
// package heuristics are validated against these oracles, and the
// NP-hardness reductions of package npc use them as decision procedures.
//
// All four interval-mapping solvers (MinLatencyInterval, MinFPUnderLatency,
// MinLatencyUnderFP, ParetoFront) run on the shared bitmask enumeration
// engine of engine.go: candidates are interval boundaries plus replica
// bitmasks evaluated through mapping.Evaluator with zero heap
// allocations, subtrees provably worse than the incumbent (or outside the
// constraint) are pruned, and the search fans out over Options.Workers
// goroutines by first-interval subtree. Platforms up to 64 processors
// (62 with replication) run the uint64-register narrow search; wider
// platforms run the multi-word bitset search of enginewide.go — same
// pruning, budget, cancellation and determinism guarantees for any m.
// Results are deterministic and independent of the worker count.
//
// Bound sharing: workers publish every strictly better incumbent through
// one atomic word (incumbent.go) and read it once per node, so each
// subtree prunes against the global best rather than its own. The
// discipline that keeps this deterministic — prune only strictly beyond
// tolerance, break metric ties by task order, treat a stale bound as
// costing work but never correctness — is documented in incumbent.go and
// enforced by the determinism property tests across worker counts.
//
// Batch evaluation: on non-replication levels the engines score every
// singleton sibling of a shared interval prefix in one
// mapping.EvaluateMany(W) call, hoisting sibling-invariant subterms while
// preserving the single-candidate association order bitwise (see
// internal/mapping/evalmany.go for the contract).
//
// Suffix memoization: Options.SuffixMemo attaches a canonical cache of
// exactly solved sub-instances keyed by (first free stage, free-processor
// multiset folded by speed class). On communication-homogeneous platforms
// the branch-and-bound tail bound and the bitmask DP's latency cap then
// use exact suffix optima instead of static relaxations. A memoized bound
// is always ≥ the static TailLatencyLB and always a true lower bound —
// under replication too, which can only increase Eq. (1) latency — so the
// strict-better pruning discipline is preserved and results stay bitwise
// those of a memo-less run.
//
// Invariants the tests enforce: complete-candidate metrics are bitwise
// identical to the slice-based mapping.Evaluate on both search paths;
// batch-scored siblings are bitwise identical to the single-candidate
// push arithmetic; the enumeration inner loop performs zero heap
// allocations per visited node; solver outputs (mapping and metrics) are
// bitwise identical for every worker count, with or without a suffix
// memo; and canceling Options.Ctx aborts within one sibling block,
// returning the best incumbent found so far.
package exact

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/frontier"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/telemetry"
)

// ErrBudget is returned when an enumeration would exceed Options.MaxEnum
// evaluated mappings; callers should shrink the instance or raise the cap.
var ErrBudget = errors.New("exact: enumeration budget exceeded")

// ErrInfeasible is returned when no enumerated mapping satisfies the
// constraint.
var ErrInfeasible = errors.New("exact: no mapping satisfies the constraint")

// ErrCanceled is returned when Options.Ctx was canceled before the
// enumeration completed. Errors carrying it also wrap the context's cause,
// so errors.Is works against both ErrCanceled and context.Canceled /
// context.DeadlineExceeded. The four interval-mapping solvers return their
// best-so-far incumbent alongside this error when one was found; such a
// result is feasible but not proven optimal.
var ErrCanceled = errors.New("exact: enumeration canceled")

// Options tunes the enumeration.
type Options struct {
	// Replication enumerates every assignment of disjoint processor
	// subsets to intervals. When false, only one processor per interval is
	// considered (sufficient for latency-only optimization: replication
	// can only increase latency).
	Replication bool
	// MaxEnum caps the number of evaluated mappings (default
	// DefaultMaxEnum). Branch-and-bound pruned subtrees are not charged,
	// so the same budget now covers far larger instances than full
	// enumeration did.
	MaxEnum int64
	// Workers is the number of enumeration goroutines used by the four
	// interval-mapping solvers and ForEachMappingParallel: 0 means
	// GOMAXPROCS, 1 forces a sequential search. Results are identical for
	// every worker count.
	Workers int
	// Ctx cancels the enumeration early: when it is done, every worker
	// aborts at its next search node and the solvers return the best
	// incumbent found so far wrapped in ErrCanceled. nil means
	// context.Background() (never canceled). Results remain deterministic
	// whenever the enumeration runs to completion.
	Ctx context.Context
	// Eval, when non-nil, is a prebuilt evaluator for the same
	// (pipeline, platform) pair, letting long-lived sessions amortize the
	// precomputation across calls. The caller is responsible for the pair
	// actually matching the solver arguments.
	Eval *mapping.Evaluator
	// Recorder, when non-nil, receives per-run engine telemetry: run and
	// enumerated-mapping counters plus a search-duration sketch. The
	// enumeration inner loop is untouched either way — recording happens
	// once per run, outside the hot path.
	Recorder *telemetry.Recorder
	// SuffixMemo, when non-nil, is a canonical suffix cache built by
	// NewSuffixMemo for the same (pipeline, platform) pair, sharpening the
	// communication-homogeneous tail bound and the bitmask DP's pruning
	// cap; like Eval it exists so long-lived sessions can reuse solved
	// sub-instances across calls. The caller is responsible for the pair
	// actually matching the solver arguments; memos built for a different
	// instance shape are ignored. Memoized bounds never relax pruning below
	// the strict-better discipline, so results are bitwise those of a
	// memo-less run (see the package comment).
	SuffixMemo *SuffixMemo

	// forceWide (tests only) runs the multi-word wide search even on
	// platforms the narrow uint64 search covers, so the wide path can be
	// property-tested exhaustively against the slice reference on small
	// instances.
	forceWide bool
}

// DefaultMaxEnum is the enumeration budget applied when Options.MaxEnum
// is zero. Exported so callers layering their own enumeration on top
// (throughput's RR grouping sweep) can charge the same budget.
const DefaultMaxEnum = 5_000_000

func (o Options) maxEnum() int64 {
	if o.MaxEnum > 0 {
		return o.MaxEnum
	}
	return DefaultMaxEnum
}

// evaluator returns the cached evaluator when the caller supplied one and
// builds (validating the instance) otherwise.
func (o Options) evaluator(p *pipeline.Pipeline, pl *platform.Platform) (*mapping.Evaluator, error) {
	if o.Eval != nil {
		return o.Eval, nil
	}
	return mapping.NewEvaluator(p, pl)
}

// canceledErr wraps both ErrCanceled and the context's cancellation cause.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

// WorkerCount resolves Workers to the effective goroutine count.
func (o Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return defaultWorkers()
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// latencyTol mirrors package poly: thresholds sitting exactly on an
// achievable latency stay feasible despite float accumulation.
const latencyTol = 1e-9

func leqTol(x, bound float64) bool {
	return x <= bound+latencyTol*math.Max(1, math.Abs(bound))
}

// ForEachMapping enumerates every valid interval mapping of n stages onto
// m processors, invoking visit for each. The *mapping.Mapping passed to
// visit is reused between calls — clone it to retain it. Enumeration stops
// early when visit returns false. The error is ErrBudget if the cap was
// hit.
//
// This is the original slice-based enumerator. It survives purely as the
// reference implementation the bitmask engine (narrow and wide) is
// property-tested against; production enumeration — any m — goes through
// ForEachMappingParallel and the engine.
func ForEachMapping(n, m int, opts Options, visit func(*mapping.Mapping) bool) error {
	budget := opts.maxEnum()
	count := int64(0)
	stopped := false
	canceled := false
	var done <-chan struct{}
	if opts.Ctx != nil {
		done = opts.Ctx.Done()
	}

	intervals := make([]mapping.Interval, 0, n)
	// assign[u] = interval index of processor u, or -1 when unused.
	assign := make([]int, m)

	var emit func(p int) bool // builds alloc from assign and visits
	emit = func(p int) bool {
		alloc := make([][]int, p)
		for u, j := range assign {
			if j >= 0 {
				alloc[j] = append(alloc[j], u)
			}
		}
		for j := 0; j < p; j++ {
			if len(alloc[j]) == 0 {
				return true // not a valid mapping; skip silently
			}
		}
		count++
		if done != nil && count&1023 == 0 {
			select {
			case <-done:
				canceled = true
				return false
			default:
			}
		}
		if count > budget {
			return false
		}
		mp := &mapping.Mapping{Intervals: intervals, Alloc: alloc}
		if !visit(mp) {
			stopped = true
			return false
		}
		return true
	}

	var assignProcs func(u, p int) bool
	assignProcs = func(u, p int) bool {
		if u == m {
			return emit(p)
		}
		for j := -1; j < p; j++ {
			assign[u] = j
			if !opts.Replication && j >= 0 {
				// at most one processor per interval
				dup := false
				for v := 0; v < u; v++ {
					if assign[v] == j {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
			}
			if !assignProcs(u+1, p) {
				return false
			}
		}
		assign[u] = -1
		return true
	}

	var split func(start int) bool
	split = func(start int) bool {
		if start == n {
			p := len(intervals)
			if p > m {
				return true
			}
			for u := range assign {
				assign[u] = -1
			}
			return assignProcs(0, p)
		}
		for end := start; end < n; end++ {
			intervals = append(intervals, mapping.Interval{First: start, Last: end})
			ok := split(end + 1)
			intervals = intervals[:len(intervals)-1]
			if !ok {
				return false
			}
		}
		return true
	}

	if n <= 0 || m <= 0 {
		return fmt.Errorf("exact: need n>0 and m>0, got n=%d m=%d", n, m)
	}
	finished := split(0)
	if canceled {
		return canceledErr(opts.Ctx)
	}
	if !finished && !stopped && count > budget {
		return ErrBudget
	}
	return nil
}

// Result mirrors poly.Result for the exact solvers.
type Result struct {
	Mapping *mapping.Mapping
	Metrics mapping.Metrics
}

// metric comparators for the incumbent trackers. Each returns <0 when a
// is strictly preferable, 0 on an exact tie (resolved by task order).
func cmpLatency(a, b mapping.Metrics) int {
	switch {
	case a.Latency < b.Latency:
		return -1
	case a.Latency > b.Latency:
		return 1
	default:
		return 0
	}
}

func cmpFPThenLatency(a, b mapping.Metrics) int {
	switch {
	case a.FailureProb < b.FailureProb:
		return -1
	case a.FailureProb > b.FailureProb:
		return 1
	default:
		return cmpLatency(a, b)
	}
}

func cmpLatencyThenFP(a, b mapping.Metrics) int {
	if c := cmpLatency(a, b); c != 0 {
		return c
	}
	switch {
	case a.FailureProb < b.FailureProb:
		return -1
	case a.FailureProb > b.FailureProb:
		return 1
	default:
		return 0
	}
}

func objLatency(m mapping.Metrics) float64 { return m.Latency }
func objFP(m mapping.Metrics) float64      { return m.FailureProb }

// finish translates the engine outcome plus the incumbent into the solver
// result: after a clean run the incumbent is the proven optimum
// (ErrInfeasible when empty); after a canceled run the incumbent — when
// one was found — is returned as best-so-far alongside the ErrCanceled
// error, so callers can grade it as a partial answer.
func finish(inc *incumbent, ev *mapping.Evaluator, runErr error) (Result, error) {
	if runErr != nil && !errors.Is(runErr, ErrCanceled) {
		return Result{}, runErr
	}
	res, err := inc.result(ev)
	if runErr != nil {
		if err != nil {
			return Result{}, runErr
		}
		return res, runErr
	}
	if err != nil {
		return Result{}, fmt.Errorf("interval enumeration: %w", err)
	}
	return res, nil
}

// maxReplicationProcs bounds m for the narrow (uint64-register) engine's
// replication enumeration (task indices pack end·(2^m−1)+subset into an
// int64); wider replication instances run on the multi-word wide search
// of enginewide.go, as do all platforms past mapping.MaxEvalProcs.
const maxReplicationProcs = 62

// MinLatencyInterval finds the latency-optimal interval mapping by
// pruned exhaustive enumeration. Replication is skipped by default (it can
// only increase latency) unless opts.Replication is set.
func MinLatencyInterval(p *pipeline.Pipeline, pl *platform.Platform, opts Options) (Result, error) {
	ev, err := opts.evaluator(p, pl)
	if err != nil {
		return Result{}, err
	}
	g, err := newEngine(ev, p.NumStages(), pl.NumProcs(), opts)
	if err != nil {
		return Result{}, err
	}
	inc := newIncumbent(p.NumStages(), g.stride, cmpLatency, objLatency)
	runErr := g.run(opts.WorkerCount(), func(int) (pruneFunc, visitFunc) {
		prune := func(lb, _ float64) bool {
			return latencyStrictlyWorse(lb, inc.bound.load())
		}
		visit := func(task int64, ends []int, masks []uint64, met mapping.Metrics) bool {
			inc.offer(task, ends, masks, met)
			return true
		}
		return prune, visit
	})
	return finish(inc, ev, runErr)
}

// MinFPUnderLatency finds the interval mapping of minimum failure
// probability among those with latency ≤ maxLatency, by pruned exhaustive
// enumeration (replication enabled regardless of opts.Replication, since
// replication is the whole point of reliability). Subtrees whose latency
// lower bound already violates the threshold, or whose prefix failure
// probability already exceeds the incumbent, are cut.
func MinFPUnderLatency(p *pipeline.Pipeline, pl *platform.Platform, maxLatency float64, opts Options) (Result, error) {
	opts.Replication = true
	ev, err := opts.evaluator(p, pl)
	if err != nil {
		return Result{}, err
	}
	g, err := newEngine(ev, p.NumStages(), pl.NumProcs(), opts)
	if err != nil {
		return Result{}, err
	}
	inc := newIncumbent(p.NumStages(), g.stride, cmpFPThenLatency, objFP)
	runErr := g.run(opts.WorkerCount(), func(int) (pruneFunc, visitFunc) {
		prune := func(lb, prefixFP float64) bool {
			return latencyStrictlyWorse(lb, maxLatency) || prefixFP > inc.bound.load()
		}
		visit := func(task int64, ends []int, masks []uint64, met mapping.Metrics) bool {
			if leqTol(met.Latency, maxLatency) {
				inc.offer(task, ends, masks, met)
			}
			return true
		}
		return prune, visit
	})
	return finish(inc, ev, runErr)
}

// MinLatencyUnderFP finds the interval mapping of minimum latency among
// those with failure probability ≤ maxFailureProb, by pruned exhaustive
// enumeration with replication.
func MinLatencyUnderFP(p *pipeline.Pipeline, pl *platform.Platform, maxFailureProb float64, opts Options) (Result, error) {
	opts.Replication = true
	ev, err := opts.evaluator(p, pl)
	if err != nil {
		return Result{}, err
	}
	g, err := newEngine(ev, p.NumStages(), pl.NumProcs(), opts)
	if err != nil {
		return Result{}, err
	}
	inc := newIncumbent(p.NumStages(), g.stride, cmpLatencyThenFP, objLatency)
	runErr := g.run(opts.WorkerCount(), func(int) (pruneFunc, visitFunc) {
		prune := func(lb, prefixFP float64) bool {
			return prefixFP > maxFailureProb+1e-12 || latencyStrictlyWorse(lb, inc.bound.load())
		}
		visit := func(task int64, ends []int, masks []uint64, met mapping.Metrics) bool {
			if met.FailureProb <= maxFailureProb+1e-12 {
				inc.offer(task, ends, masks, met)
			}
			return true
		}
		return prune, visit
	})
	return finish(inc, ev, runErr)
}

// ParetoFront enumerates all interval mappings (with replication) and
// returns the non-dominated (latency, FP) set, sorted by increasing
// latency. Mappings with identical metrics are collapsed to one
// representative. Each worker maintains a binary-searched frontier.Front
// and prunes subtrees whose (latency lower bound, prefix FP) is already
// covered; the per-worker fronts are merged at the end, so the metric set
// is exact and deterministic for every worker count.
func ParetoFront(p *pipeline.Pipeline, pl *platform.Platform, opts Options) ([]Result, error) {
	opts.Replication = true
	ev, err := opts.evaluator(p, pl)
	if err != nil {
		return nil, err
	}
	n, m := p.NumStages(), pl.NumProcs()
	g, err := newEngine(ev, n, m, opts)
	if err != nil {
		return nil, err
	}
	workers := opts.WorkerCount()
	fronts := make([]*frontier.Front, workers)
	runErr := g.run(workers, func(w int) (pruneFunc, visitFunc) {
		f := &frontier.Front{}
		fronts[w] = f
		scratch := &mapping.Mapping{
			Intervals: make([]mapping.Interval, 0, n),
			Alloc:     make([][]int, 0, n),
		}
		procBuf := make([]int, m)
		prune := func(lb, prefixFP float64) bool {
			// Cut only when an entry is strictly better in latency than the
			// whole subtree can be (tolerance guards rounding of the bound)
			// and no worse in FP.
			return f.DominatesPoint(lb-latencyTol*math.Max(1, math.Abs(lb)), prefixFP)
		}
		visit := func(task int64, ends []int, masks []uint64, met mapping.Metrics) bool {
			// InsertTagged rejects dominated candidates without cloning and
			// resolves duplicate metric points to the lowest task, keeping
			// the representative mappings scheduling-independent.
			f.InsertTagged(met, fillMaskedMapping(scratch, procBuf, ends, masks, g.stride), task)
			return true
		}
		return prune, visit
	})
	if runErr != nil && !errors.Is(runErr, ErrCanceled) {
		return nil, runErr
	}
	merged := &frontier.Front{}
	for _, f := range fronts {
		if f == nil {
			continue
		}
		// Worker fronts already own private clones; transfer ownership
		// instead of re-cloning every survivor.
		for _, e := range f.Entries() {
			merged.InsertOwned(e.Metrics, e.Mapping, e.Task)
		}
	}
	results := make([]Result, 0, merged.Len())
	for _, e := range merged.Entries() {
		results = append(results, Result{Mapping: e.Mapping, Metrics: e.Metrics})
	}
	// A canceled enumeration still surfaces the partial front so callers
	// can serve it as a best-effort answer.
	return results, runErr
}

func sortResultsByLatency(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		return rs[i].Metrics.Latency < rs[j].Metrics.Latency
	})
}
