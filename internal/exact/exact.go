// Package exact provides exponential-time exhaustive solvers used as
// ground truth on small instances: they enumerate every interval mapping
// (optionally with replication), every one-to-one mapping, or every
// general mapping, and optimize either criterion under a threshold on the
// other. The polynomial algorithms of package poly and the heuristics of
// package heuristics are validated against these oracles, and the
// NP-hardness reductions of package npc use them as decision procedures.
package exact

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// ErrBudget is returned when an enumeration would exceed Options.MaxEnum
// evaluated mappings; callers should shrink the instance or raise the cap.
var ErrBudget = errors.New("exact: enumeration budget exceeded")

// ErrInfeasible is returned when no enumerated mapping satisfies the
// constraint.
var ErrInfeasible = errors.New("exact: no mapping satisfies the constraint")

// Options tunes the enumeration.
type Options struct {
	// Replication enumerates every assignment of disjoint processor
	// subsets to intervals. When false, only one processor per interval is
	// considered (sufficient for latency-only optimization: replication
	// can only increase latency).
	Replication bool
	// MaxEnum caps the number of evaluated mappings (default 5,000,000).
	MaxEnum int64
}

func (o Options) maxEnum() int64 {
	if o.MaxEnum > 0 {
		return o.MaxEnum
	}
	return 5_000_000
}

// latencyTol mirrors package poly: thresholds sitting exactly on an
// achievable latency stay feasible despite float accumulation.
const latencyTol = 1e-9

func leqTol(x, bound float64) bool {
	return x <= bound+latencyTol*math.Max(1, math.Abs(bound))
}

// ForEachMapping enumerates every valid interval mapping of n stages onto
// m processors, invoking visit for each. The *mapping.Mapping passed to
// visit is reused between calls — clone it to retain it. Enumeration stops
// early when visit returns false. The error is ErrBudget if the cap was
// hit.
func ForEachMapping(n, m int, opts Options, visit func(*mapping.Mapping) bool) error {
	budget := opts.maxEnum()
	count := int64(0)
	stopped := false

	intervals := make([]mapping.Interval, 0, n)
	// assign[u] = interval index of processor u, or -1 when unused.
	assign := make([]int, m)

	var emit func(p int) bool // builds alloc from assign and visits
	emit = func(p int) bool {
		alloc := make([][]int, p)
		for u, j := range assign {
			if j >= 0 {
				alloc[j] = append(alloc[j], u)
			}
		}
		for j := 0; j < p; j++ {
			if len(alloc[j]) == 0 {
				return true // not a valid mapping; skip silently
			}
		}
		count++
		if count > budget {
			return false
		}
		mp := &mapping.Mapping{Intervals: intervals, Alloc: alloc}
		if !visit(mp) {
			stopped = true
			return false
		}
		return true
	}

	var assignProcs func(u, p int) bool
	assignProcs = func(u, p int) bool {
		if u == m {
			return emit(p)
		}
		for j := -1; j < p; j++ {
			assign[u] = j
			if !opts.Replication && j >= 0 {
				// at most one processor per interval
				dup := false
				for v := 0; v < u; v++ {
					if assign[v] == j {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
			}
			if !assignProcs(u+1, p) {
				return false
			}
		}
		assign[u] = -1
		return true
	}

	var split func(start int) bool
	split = func(start int) bool {
		if start == n {
			p := len(intervals)
			if p > m {
				return true
			}
			for u := range assign {
				assign[u] = -1
			}
			return assignProcs(0, p)
		}
		for end := start; end < n; end++ {
			intervals = append(intervals, mapping.Interval{First: start, Last: end})
			ok := split(end + 1)
			intervals = intervals[:len(intervals)-1]
			if !ok {
				return false
			}
		}
		return true
	}

	if n <= 0 || m <= 0 {
		return fmt.Errorf("exact: need n>0 and m>0, got n=%d m=%d", n, m)
	}
	if !split(0) && !stopped && count > budget {
		return ErrBudget
	}
	return nil
}

// Result mirrors poly.Result for the exact solvers.
type Result struct {
	Mapping *mapping.Mapping
	Metrics mapping.Metrics
}

// MinLatencyInterval finds the latency-optimal interval mapping by
// exhaustive enumeration. Replication is skipped by default (it can only
// increase latency) unless opts.Replication is set.
func MinLatencyInterval(p *pipeline.Pipeline, pl *platform.Platform, opts Options) (Result, error) {
	best := Result{Metrics: mapping.Metrics{Latency: math.Inf(1)}}
	err := ForEachMapping(p.NumStages(), pl.NumProcs(), opts, func(mp *mapping.Mapping) bool {
		met, err := mapping.Evaluate(p, pl, mp)
		if err != nil {
			return true
		}
		if met.Latency < best.Metrics.Latency {
			best = Result{Mapping: mp.Clone(), Metrics: met}
		}
		return true
	})
	if err != nil {
		return Result{}, err
	}
	if best.Mapping == nil {
		return Result{}, ErrInfeasible
	}
	return best, nil
}

// MinFPUnderLatency finds the interval mapping of minimum failure
// probability among those with latency ≤ maxLatency, by exhaustive
// enumeration (replication enabled regardless of opts.Replication, since
// replication is the whole point of reliability).
func MinFPUnderLatency(p *pipeline.Pipeline, pl *platform.Platform, maxLatency float64, opts Options) (Result, error) {
	opts.Replication = true
	best := Result{Metrics: mapping.Metrics{FailureProb: math.Inf(1)}}
	err := ForEachMapping(p.NumStages(), pl.NumProcs(), opts, func(mp *mapping.Mapping) bool {
		met, err := mapping.Evaluate(p, pl, mp)
		if err != nil {
			return true
		}
		if !leqTol(met.Latency, maxLatency) {
			return true
		}
		if met.FailureProb < best.Metrics.FailureProb ||
			(met.FailureProb == best.Metrics.FailureProb && met.Latency < best.Metrics.Latency) {
			best = Result{Mapping: mp.Clone(), Metrics: met}
		}
		return true
	})
	if err != nil {
		return Result{}, err
	}
	if best.Mapping == nil {
		return Result{}, ErrInfeasible
	}
	return best, nil
}

// MinLatencyUnderFP finds the interval mapping of minimum latency among
// those with failure probability ≤ maxFailureProb, by exhaustive
// enumeration with replication.
func MinLatencyUnderFP(p *pipeline.Pipeline, pl *platform.Platform, maxFailureProb float64, opts Options) (Result, error) {
	opts.Replication = true
	best := Result{Metrics: mapping.Metrics{Latency: math.Inf(1)}}
	err := ForEachMapping(p.NumStages(), pl.NumProcs(), opts, func(mp *mapping.Mapping) bool {
		met, err := mapping.Evaluate(p, pl, mp)
		if err != nil {
			return true
		}
		if met.FailureProb > maxFailureProb+1e-12 {
			return true
		}
		if met.Latency < best.Metrics.Latency ||
			(met.Latency == best.Metrics.Latency && met.FailureProb < best.Metrics.FailureProb) {
			best = Result{Mapping: mp.Clone(), Metrics: met}
		}
		return true
	})
	if err != nil {
		return Result{}, err
	}
	if best.Mapping == nil {
		return Result{}, ErrInfeasible
	}
	return best, nil
}

// ParetoFront enumerates all interval mappings (with replication) and
// returns the non-dominated (latency, FP) set, sorted by increasing
// latency. Mappings with identical metrics are collapsed to one
// representative.
func ParetoFront(p *pipeline.Pipeline, pl *platform.Platform, opts Options) ([]Result, error) {
	opts.Replication = true
	var front []Result
	err := ForEachMapping(p.NumStages(), pl.NumProcs(), opts, func(mp *mapping.Mapping) bool {
		met, err := mapping.Evaluate(p, pl, mp)
		if err != nil {
			return true
		}
		for _, r := range front {
			if r.Metrics.Dominates(met) || r.Metrics == met {
				return true // dominated or duplicate: skip
			}
		}
		keep := front[:0]
		for _, r := range front {
			if !met.Dominates(r.Metrics) {
				keep = append(keep, r)
			}
		}
		front = append(keep, Result{Mapping: mp.Clone(), Metrics: met})
		return true
	})
	if err != nil {
		return nil, err
	}
	sortResultsByLatency(front)
	return front, nil
}

func sortResultsByLatency(rs []Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Metrics.Latency < rs[j-1].Metrics.Latency; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
