package exact

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/mapping"
)

// This file is the shared-incumbent machinery of the parallel search: the
// single global best candidate every fan-out worker prunes against, and
// the lock-free bound that makes reading it one atomic load per node.
//
// Determinism invariants (the contract the equivalence property tests
// pin; violating any of them makes results depend on worker count or
// scheduling):
//
//  1. Strict-better pruning. Subtrees are cut only when their lower bound
//     is provably worse than the published bound — beyond latencyTol for
//     latency objectives (latencyStrictlyWorse), and never on ties. A
//     tie-cutting bound would let worker A's incumbent suppress the
//     equal-metric candidate worker B would have reported, and the
//     task-order tie-break below needs to see both.
//  2. Task-order tie-break. offer resolves equal-metric candidates toward
//     the smaller first-interval task index, and tasks are enumerated in
//     a fixed total order with each subtree explored sequentially by one
//     worker. The winning candidate is therefore a pure function of the
//     instance, regardless of how many workers raced or which of them
//     published first.
//  3. Monotone bound. The published objective only ever decreases
//     (atomicMin), so a worker reading a stale value prunes less, never
//     more, than a fully synchronized one — lateness costs work, not
//     correctness, and the final merge is unaffected.
//
// Together these make the returned mapping AND metrics bitwise-identical
// for every Workers setting, with or without mid-run publication races.

// atomicMin is a lock-free monotone float64 minimum used as the shared
// pruning bound.
type atomicMin struct{ bits atomic.Uint64 }

func newAtomicMin() *atomicMin {
	a := &atomicMin{}
	a.bits.Store(math.Float64bits(math.Inf(1)))
	return a
}

func (a *atomicMin) load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicMin) min(x float64) {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) <= x {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

// incumbent tracks the best candidate across workers with a deterministic
// total order: the solver's metric comparator first, then the task index
// of discovery (so the result is independent of worker count and
// scheduling). The objective value is mirrored into an atomicMin for
// cheap lock-free pruning reads.
type incumbent struct {
	mu     sync.Mutex
	found  bool
	met    mapping.Metrics
	task   int64
	ends   []int
	masks  []uint64 // flat, stride words per interval
	stride int
	nEnds  int
	bound  *atomicMin
	cmp    func(a, b mapping.Metrics) int // <0: a strictly better
	objOf  func(met mapping.Metrics) float64
}

func newIncumbent(n, stride int, cmp func(a, b mapping.Metrics) int, objOf func(mapping.Metrics) float64) *incumbent {
	return &incumbent{
		ends:   make([]int, n),
		masks:  make([]uint64, n*stride),
		stride: stride,
		bound:  newAtomicMin(),
		cmp:    cmp,
		objOf:  objOf,
	}
}

// offer proposes a feasible candidate. The fast path rejects without the
// lock when the objective is strictly above the current bound.
func (inc *incumbent) offer(task int64, ends []int, masks []uint64, met mapping.Metrics) {
	if inc.objOf(met) > inc.bound.load() {
		return
	}
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.found {
		c := inc.cmp(met, inc.met)
		if c > 0 || (c == 0 && task >= inc.task) {
			return
		}
	}
	inc.found = true
	inc.met = met
	inc.task = task
	inc.nEnds = copy(inc.ends, ends)
	copy(inc.masks, masks)
	inc.bound.min(inc.objOf(met))
}

// result materializes the winning candidate.
func (inc *incumbent) result(ev *mapping.Evaluator) (Result, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if !inc.found {
		return Result{}, ErrInfeasible
	}
	var mp *mapping.Mapping
	if inc.stride == 1 {
		mp = ev.ToMapping(inc.ends[:inc.nEnds], inc.masks[:inc.nEnds])
	} else {
		mp = ev.ToMappingW(inc.ends[:inc.nEnds], inc.masks[:inc.nEnds*inc.stride])
	}
	return Result{Mapping: mp, Metrics: inc.met}, nil
}

// latencyStrictlyWorse reports lb > bound beyond the shared latency
// tolerance, i.e. the subtree is provably worse and safe to cut even in
// the presence of float accumulation ties.
func latencyStrictlyWorse(lb, bound float64) bool {
	return lb > bound+latencyTol*math.Max(1, math.Abs(bound))
}
