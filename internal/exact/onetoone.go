package exact

import (
	"fmt"
	"math"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// GeneralResult pairs a general mapping with its latency.
type GeneralResult struct {
	Mapping *mapping.GeneralMapping
	Latency float64
}

// MinLatencyOneToOne finds the latency-optimal one-to-one mapping (each
// stage on a distinct processor) by enumerating all m!/(m−n)! injective
// assignments. This is the exact oracle for the Theorem 3 NP-hardness
// construction; instances must stay small (the cost is factorial).
func MinLatencyOneToOne(p *pipeline.Pipeline, pl *platform.Platform) (GeneralResult, error) {
	n, m := p.NumStages(), pl.NumProcs()
	if n > m {
		return GeneralResult{}, fmt.Errorf("exact: one-to-one needs n ≤ m, got n=%d m=%d", n, m)
	}
	if n > 10 && m > 10 {
		return GeneralResult{}, fmt.Errorf("exact: one-to-one instance too large (n=%d, m=%d)", n, m)
	}
	procs := make([]int, n)
	used := make([]bool, m)
	best := GeneralResult{Latency: math.Inf(1)}
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			g := &mapping.GeneralMapping{ProcOf: procs}
			lat, err := g.Latency(p, pl)
			if err == nil && lat < best.Latency {
				best = GeneralResult{
					Mapping: &mapping.GeneralMapping{ProcOf: append([]int(nil), procs...)},
					Latency: lat,
				}
			}
			return
		}
		for u := 0; u < m; u++ {
			if used[u] {
				continue
			}
			used[u] = true
			procs[i] = u
			rec(i + 1)
			used[u] = false
		}
	}
	rec(0)
	return best, nil
}

// MinLatencyGeneralBrute finds the latency-optimal general mapping by
// enumerating all m^n assignments. It exists purely to validate the
// polynomial shortest-path algorithm of Theorem 4 on small instances.
func MinLatencyGeneralBrute(p *pipeline.Pipeline, pl *platform.Platform) (GeneralResult, error) {
	n, m := p.NumStages(), pl.NumProcs()
	if total := math.Pow(float64(m), float64(n)); total > 2e6 {
		return GeneralResult{}, fmt.Errorf("exact: m^n = %g too large", total)
	}
	procs := make([]int, n)
	best := GeneralResult{Latency: math.Inf(1)}
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			g := &mapping.GeneralMapping{ProcOf: procs}
			lat, err := g.Latency(p, pl)
			if err == nil && lat < best.Latency {
				best = GeneralResult{
					Mapping: &mapping.GeneralMapping{ProcOf: append([]int(nil), procs...)},
					Latency: lat,
				}
			}
			return
		}
		for u := 0; u < m; u++ {
			procs[i] = u
			rec(i + 1)
		}
	}
	rec(0)
	return best, nil
}
