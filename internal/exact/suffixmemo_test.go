package exact

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// bruteSuffix is the direct recursive reference for SuffixMemo.Lookup: the
// minimum Eq. (1) latency of stages [start, n) with one replica per
// interval drawn from the free set (processor-indexed, no class folding).
func bruteSuffix(p *pipeline.Pipeline, pl *platform.Platform, b float64, start int, free uint64) float64 {
	n := p.NumStages()
	if start >= n {
		return p.Delta[n] / b
	}
	best := math.Inf(1)
	in := p.Delta[start] / b
	for bm := free; bm != 0; bm &= bm - 1 {
		u := bits.TrailingZeros64(bm)
		for end := start; end < n; end++ {
			tail := p.Delta[n] / b
			if end < n-1 {
				tail = bruteSuffix(p, pl, b, end+1, free&^(1<<uint(u)))
				if math.IsInf(tail, 1) {
					continue
				}
			}
			if t := in + p.Work(start, end)/pl.Speed[u] + tail; t < best {
				best = t
			}
		}
	}
	return best
}

// TestSuffixMemoMatchesBruteForce: Lookup must equal the brute-force
// suffix optimum exactly (class folding changes which processor
// represents a speed class, never any float value).
func TestSuffixMemoMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		p := pipeline.Random(rng, n, 1, 10, 0, 10)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 1+rng.Float64()*4)
		b, ok := pl.CommHomogeneous()
		if !ok {
			t.Fatal("expected comm-hom platform")
		}
		sm := NewSuffixMemo(p, pl, 0)
		if sm == nil {
			t.Fatalf("seed %d: no memo for a small comm-hom instance", seed)
		}
		full := uint64(1)<<uint(m) - 1
		for trial := 0; trial < 20; trial++ {
			free := rng.Uint64() & full
			start := rng.Intn(n + 1)
			idx := sm.FullIdx()
			for bm := full &^ free; bm != 0; bm &= bm - 1 {
				idx -= sm.Weight(bits.TrailingZeros64(bm))
			}
			got := sm.Lookup(start, idx)
			want := bruteSuffix(p, pl, b, start, free)
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("seed %d start %d free %b: Lookup = %v, brute force = %v", seed, start, free, got, want)
			}
		}
	}
}

// TestSuffixMemoSharpensTailLB: the memo value over the full free set can
// never fall below the evaluator's static TailLatencyLB — it is the same
// quantity without the per-term relaxations.
func TestSuffixMemoSharpensTailLB(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(6)
		p := pipeline.Random(rng, n, 1, 10, 0, 10)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 1+rng.Float64()*4)
		ev, err := mapping.NewEvaluator(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		sm := NewSuffixMemo(p, pl, 0)
		if sm == nil {
			t.Fatalf("seed %d: no memo", seed)
		}
		for start := 0; start <= n; start++ {
			memoVal := sm.Lookup(start, sm.FullIdx())
			lb := ev.TailLatencyLB(start)
			if memoVal < lb {
				t.Fatalf("seed %d start %d: memo %v below static tail bound %v", seed, start, memoVal, lb)
			}
		}
	}
}

// TestSuffixMemoGates: heterogeneous platforms and oversized state spaces
// must yield no memo.
func TestSuffixMemoGates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := pipeline.Random(rng, 3, 1, 10, 0, 10)
	het := platform.RandomFullyHeterogeneous(rng, 4, 1, 10, 0.05, 0.95, 1, 20)
	if sm := NewSuffixMemo(p, het, 0); sm != nil {
		t.Error("heterogeneous platform produced a suffix memo")
	}
	hom := platform.RandomCommHomogeneous(rng, 8, 1, 10, 0.05, 0.95, 2)
	if sm := NewSuffixMemo(p, hom, 2); sm != nil {
		t.Errorf("memo built despite a %d-entry table cap of 2", sm.Entries())
	}
	if sm := NewSuffixMemo(p, hom, 0); sm == nil {
		t.Error("no memo for a small comm-hom instance under the default cap")
	}
}

// TestSuffixMemoEntriesBounded: the default cap keeps the table within
// DefaultSuffixMemoEntries slots.
func TestSuffixMemoEntriesBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := pipeline.Random(rng, 6, 1, 10, 0, 10)
	pl := platform.RandomCommHomogeneous(rng, 32, 1, 10, 0.05, 0.95, 2)
	sm := NewSuffixMemo(p, pl, 0)
	if sm == nil {
		return // fold produced too many classes; the gate worked
	}
	if sm.Entries() > DefaultSuffixMemoEntries {
		t.Fatalf("table has %d entries, cap is %d", sm.Entries(), DefaultSuffixMemoEntries)
	}
}
