package exact

import (
	"math"
	"sync/atomic"

	"repro/internal/pipeline"
	"repro/internal/platform"
)

// SuffixMemo is a bounded cache of exactly-solved sub-instances of the
// communication-homogeneous latency recursion, consulted by the
// branch-and-bound tail and the bitmask DP in place of the generic
// TailLatencyLB. A sub-instance is keyed by (first remaining stage,
// canonical free-processor multiset): processors are folded into speed
// classes — the attribute folding internal/canon applies to whole
// platforms — because Eq. (1) costs depend on a replica only through its
// speed, so every free set with the same per-class counts has the same
// optimal completion latency. The canonical key is a mixed-radix integer
// (one digit per class, the count of free processors of that class),
// which the searches maintain incrementally: choosing replica set S moves
// the key by Σ_{u∈S} weight(class(u)), one subtraction per replica.
//
// Each table slot holds the exact minimum Eq. (1) latency of completing
// stages [start, n) — input transfers, computation on one replica per
// interval, final output — using only the free multiset, or +Inf when the
// free processors cannot cover the remaining stages. Values are filled
// lazily on first lookup (the solve's reachable states only) and kept
// across solves, so warm-session traffic against the same instance reuses
// them; concurrent fills are benign because the value is a pure function
// of the key (racing workers store identical bits).
//
// Soundness as a pruning bound (the invariant the equivalence tests
// enforce): the memo value is computed without replication, and
// replication can only increase Eq. (1) latency (k·δ/b grows with k, the
// slowest replica is no faster than the fastest); picking each interval's
// fastest replica maps any replicated completion onto a no-replication
// completion over a sub-multiset of the free set, whose cost the memo
// minimum lower-bounds. The memo therefore sharpens TailLatencyLB — it
// can never fall below it — while remaining a true lower bound for every
// solver, including the replicated FP searches. Pruning against it stays
// strict (the shared latencyTol margin dwarfs float accumulation noise),
// so solver outputs are bit-for-bit those of the memo-less engine.
type SuffixMemo struct {
	n, m int
	b    float64 // the single bandwidth (comm-hom)
	pipe *pipeline.Pipeline

	speeds []float64 // class -> speed
	counts []int     // class -> number of processors in the class
	radix  []int64   // class -> mixed-radix weight of one processor
	weight []int64   // processor -> radix of its class

	states  int64 // Π (counts[c]+1): multiset keys per stage
	fullIdx int64 // key of the all-processors-free multiset
	outTerm float64

	// table[start*states+idx] holds the Float64bits of the suffix value,
	// or suffixUnset while the slot is still empty.
	table []atomic.Uint64
}

// suffixUnset marks an unfilled slot. The bit pattern is a quiet NaN no
// suffix computation produces (values are non-negative or +Inf).
const suffixUnset = ^uint64(0)

// DefaultSuffixMemoEntries caps the table size (entries, 8 bytes each):
// platforms whose speed-class structure would need a larger table get no
// memo and fall back to TailLatencyLB. The cap keeps a warm session's
// footprint small enough for serve-tier session caches.
const DefaultSuffixMemoEntries = 1 << 18

// NewSuffixMemo builds the memo for one instance, or returns nil when the
// platform is not communication homogeneous (Eq. (2) costs depend on
// identity, not class) or the folded state space exceeds maxEntries
// (≤ 0 selects DefaultSuffixMemoEntries). A nil *SuffixMemo is a valid
// "no memo" value everywhere.
func NewSuffixMemo(p *pipeline.Pipeline, pl *platform.Platform, maxEntries int) *SuffixMemo {
	b, ok := pl.CommHomogeneous()
	if !ok {
		return nil
	}
	if maxEntries <= 0 {
		maxEntries = DefaultSuffixMemoEntries
	}
	n, m := p.NumStages(), pl.NumProcs()
	sm := &SuffixMemo{n: n, m: m, b: b, pipe: p, weight: make([]int64, m)}
	classOf := make([]int, m)
	for u := 0; u < m; u++ {
		c := -1
		for i, s := range sm.speeds {
			if s == pl.Speed[u] {
				c = i
				break
			}
		}
		if c < 0 {
			c = len(sm.speeds)
			sm.speeds = append(sm.speeds, pl.Speed[u])
			sm.counts = append(sm.counts, 0)
		}
		classOf[u] = c
		sm.counts[c]++
	}
	sm.states = 1
	for _, cnt := range sm.counts {
		sm.states *= int64(cnt + 1)
		if sm.states > int64(maxEntries) {
			return nil
		}
	}
	if int64(n)*sm.states > int64(maxEntries) {
		return nil
	}
	sm.radix = make([]int64, len(sm.counts))
	w := int64(1)
	for c, cnt := range sm.counts {
		sm.radix[c] = w
		sm.fullIdx += int64(cnt) * w
		w *= int64(cnt + 1)
	}
	for u := 0; u < m; u++ {
		sm.weight[u] = sm.radix[classOf[u]]
	}
	sm.outTerm = p.Delta[n] / sm.b
	sm.table = make([]atomic.Uint64, int64(n)*sm.states)
	for i := range sm.table {
		sm.table[i].Store(suffixUnset)
	}
	return sm
}

// FullIdx returns the canonical key of the all-free multiset, the root of
// a search's incremental key maintenance.
func (sm *SuffixMemo) FullIdx() int64 { return sm.fullIdx }

// Weight returns the key delta of enrolling processor u.
func (sm *SuffixMemo) Weight(u int) int64 { return sm.weight[u] }

// Entries reports the table capacity (for gating and telemetry).
func (sm *SuffixMemo) Entries() int { return len(sm.table) }

// Lookup returns the exact minimum completion latency of stages
// [start, n) over the free multiset idx (+Inf when the free processors
// cannot cover them), filling the slot — and, transitively, the child
// slots the recursion touches — on first use. Lookup is safe for
// concurrent use and performs no heap allocation.
func (sm *SuffixMemo) Lookup(start int, idx int64) float64 {
	if start >= sm.n {
		return sm.outTerm
	}
	slot := &sm.table[int64(start)*sm.states+idx]
	if bits := slot.Load(); bits != suffixUnset {
		return math.Float64frombits(bits)
	}
	v := sm.compute(start, idx)
	slot.Store(math.Float64bits(v))
	return v
}

// compute solves the sub-instance: choose the next interval's end and the
// speed class of its single replica, recursing on the remainder.
func (sm *SuffixMemo) compute(start int, idx int64) float64 {
	best := math.Inf(1)
	in := sm.pipe.Delta[start] / sm.b
	for c, r := range sm.radix {
		if (idx/r)%int64(sm.counts[c]+1) == 0 {
			continue // no free processor of this class
		}
		child := idx - r
		speed := sm.speeds[c]
		for end := start; end < sm.n; end++ {
			tail := sm.outTerm
			if end < sm.n-1 {
				tail = sm.Lookup(end+1, child)
				if math.IsInf(tail, 1) {
					continue
				}
			}
			if t := in + sm.pipe.Work(start, end)/speed + tail; t < best {
				best = t
			}
		}
	}
	return best
}
