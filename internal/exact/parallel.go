package exact

import (
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// ParetoFrontParallel computes the same exact Pareto front as ParetoFront
// with an explicit worker count (0 = GOMAXPROCS). It is a thin wrapper
// kept for API compatibility: ParetoFront itself now runs the parallel
// first-interval fan-out, so the two are the same code path. Deterministic:
// the merged front is a set, independent of scheduling.
func ParetoFrontParallel(p *pipeline.Pipeline, pl *platform.Platform, opts Options, workers int) ([]Result, error) {
	opts.Workers = workers
	return ParetoFront(p, pl, opts)
}

// ForEachMappingParallel enumerates every valid interval mapping of n
// stages on m processors across opts.WorkerCount() goroutines, splitting
// the space by first-interval subtree. newVisitor is called once per
// worker (indices 0..WorkerCount()-1, some possibly unused on tiny
// instances) and returns that worker's visit function; visits within a
// worker are sequential. task identifies the first-interval subtree a
// mapping belongs to — tasks are totally ordered, so callers can merge
// per-worker answers deterministically by (metric, task) regardless of
// scheduling. The *mapping.Mapping handed to a visitor reuses the
// worker's buffers — clone it to retain it. A visitor returning false
// stops the whole enumeration. The error is ErrBudget if opts.MaxEnum was
// exceeded (the budget is shared across workers).
func ForEachMappingParallel(n, m int, opts Options, newVisitor func(worker int) func(task int64, mp *mapping.Mapping) bool) error {
	g, err := newEngine(nil, n, m, opts)
	if err != nil {
		return err
	}
	return g.run(opts.WorkerCount(), func(w int) (pruneFunc, visitFunc) {
		visitMapping := newVisitor(w)
		scratch := &mapping.Mapping{
			Intervals: make([]mapping.Interval, 0, n),
			Alloc:     make([][]int, 0, n),
		}
		procBuf := make([]int, m)
		visit := func(task int64, ends []int, masks []uint64, _ mapping.Metrics) bool {
			return visitMapping(task, fillMaskedMapping(scratch, procBuf, ends, masks, g.stride))
		}
		return nil, visit
	})
}
