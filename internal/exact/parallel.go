package exact

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/frontier"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// ParetoFrontParallel computes the same exact Pareto front as ParetoFront
// but fans the enumeration out over worker goroutines (0 = GOMAXPROCS).
// The space is split by the choice of the first interval — its last stage
// and its replica set — which gives Σ_e (2^m − 1) independent subtrees;
// each worker drains subtrees from a shared queue into a private front,
// and the fronts are merged at the end. Deterministic: the merged front
// is a set, independent of scheduling.
func ParetoFrontParallel(p *pipeline.Pipeline, pl *platform.Platform, opts Options, workers int) ([]Result, error) {
	n, m := p.NumStages(), pl.NumProcs()
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("exact: need n>0 and m>0, got n=%d m=%d", n, m)
	}
	if m > 30 {
		return nil, fmt.Errorf("exact: parallel enumeration supports m ≤ 30, got %d", m)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type task struct {
		end    int // last stage of the first interval
		subset int // replica set of the first interval (bitmask)
	}
	tasks := make(chan task, 64)
	go func() {
		defer close(tasks)
		for end := 0; end < n; end++ {
			if end < n-1 && m < 2 {
				continue // no processor left for the remaining stages
			}
			for sub := 1; sub < 1<<m; sub++ {
				tasks <- task{end: end, subset: sub}
			}
		}
	}()

	fronts := make([]*frontier.Front, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		fronts[w] = &frontier.Front{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			intervals := make([]mapping.Interval, 0, n)
			alloc := make([][]int, 0, n)
			for t := range tasks {
				intervals = append(intervals[:0], mapping.Interval{First: 0, Last: t.end})
				alloc = append(alloc[:0], subsetProcs(t.subset))
				enumerateRest(p, pl, t.end+1, t.subset, &intervals, &alloc, fronts[w])
			}
		}()
	}
	wg.Wait()

	merged := fronts[0]
	for _, f := range fronts[1:] {
		merged.Merge(f)
	}
	var results []Result
	for _, e := range merged.Entries() {
		results = append(results, Result{Mapping: e.Mapping, Metrics: e.Metrics})
	}
	return results, nil
}

// enumerateRest extends the partial mapping (stages [0, start) assigned,
// processors `used` taken) with every completion and offers complete
// mappings to the front.
func enumerateRest(p *pipeline.Pipeline, pl *platform.Platform, start, used int, intervals *[]mapping.Interval, alloc *[][]int, front *frontier.Front) {
	n, m := p.NumStages(), pl.NumProcs()
	if start == n {
		mp := &mapping.Mapping{Intervals: *intervals, Alloc: *alloc}
		met, err := mapping.Evaluate(p, pl, mp)
		if err != nil {
			return
		}
		front.Insert(met, mp)
		return
	}
	free := (1<<m - 1) &^ used
	if free == 0 {
		return
	}
	for end := start; end < n; end++ {
		for sub := free; sub > 0; sub = (sub - 1) & free {
			*intervals = append(*intervals, mapping.Interval{First: start, Last: end})
			*alloc = append(*alloc, subsetProcs(sub))
			enumerateRest(p, pl, end+1, used|sub, intervals, alloc, front)
			*intervals = (*intervals)[:len(*intervals)-1]
			*alloc = (*alloc)[:len(*alloc)-1]
		}
	}
}

func subsetProcs(mask int) []int {
	procs := make([]int, 0, bits.OnesCount(uint(mask)))
	for mask != 0 {
		low := bits.TrailingZeros(uint(mask))
		procs = append(procs, low)
		mask &^= 1 << low
	}
	return procs
}
