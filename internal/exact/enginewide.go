package exact

import (
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/mapping"
)

// This file is the wide-platform face of the enumeration engine: the
// same pruned, parallel branch-and-bound as engine.go's narrow search,
// with replica sets held in multi-word bitset rows instead of uint64
// registers, so any processor count is supported (engine.go documents the
// split). All per-depth state lives in flat buffers allocated once per
// worker — descending and backtracking never allocate and never need
// undo writes, preserving the zero-allocation contract of the narrow
// path.
//
// Task decomposition: the narrow replication path indexes first-interval
// subtrees as end·(2^m−1)+subset, which overflows an int64 past m = 62.
// The wide path fans out by (first-interval end, lowest replica id)
// instead — n·m tasks for every m — and enumerates, within task
// (end, p), the first-interval replica sets whose lowest processor is p:
// {p} ∪ T for every T ⊆ {p+1, …, m−1}, T walked in the decreasing
// DecAnd order. Tasks remain totally ordered and each subtree is
// explored sequentially by one worker, so results merge deterministically
// for every worker count, exactly as on the narrow path.

// searchWide is one worker's private state for the wide search. All
// buffers are indexed by depth (the number of intervals already chosen);
// mask-valued state uses rows of eng.stride words.
type searchWide struct {
	eng   *engine
	prune pruneFunc
	visit visitFunc
	task  int64

	ends  []int
	masks []uint64 // chosen replica sets, row d = interval d
	used  []uint64 // used[d] = union of rows 0..d-1, row-indexed like masks
	free  []uint64 // per-depth scratch: processors still unassigned
	sub   []uint64 // per-depth scratch: the subset iterator
	rest  []uint64 // task-level scratch: {p+1, …, m−1} and the T iterator
	// sib is the batch-evaluation scratch (see search.sib in engine.go).
	sib []mapping.Sibling
	// prevProc[d] is interval d's sole replica on non-replication levels,
	// tracked so the batch prefix never has to scan mask rows for it.
	prevProc []int
	// memoIdx mirrors search.memoIdx (suffix-memo engines only).
	memoIdx []int64
	localStats
	// lat and succ mirror search.lat / search.succ (see engine.go).
	lat  []float64
	succ []float64
}

func (s *searchWide) maskRow(d int) bitset.Set {
	return bitset.Set(s.masks[d*s.eng.stride : (d+1)*s.eng.stride])
}

func (s *searchWide) usedRow(d int) bitset.Set {
	return bitset.Set(s.used[d*s.eng.stride : (d+1)*s.eng.stride])
}

func (s *searchWide) freeRow(d int) bitset.Set {
	return bitset.Set(s.free[d*s.eng.stride : (d+1)*s.eng.stride])
}

func (s *searchWide) subRow(d int) bitset.Set {
	return bitset.Set(s.sub[d*s.eng.stride : (d+1)*s.eng.stride])
}

// workerWide claims (end, lowest replica id) first-interval subtrees
// until the space or the budget is exhausted.
func (g *engine) workerWide(prune pruneFunc, visit visitFunc) {
	W := g.stride
	s := &searchWide{
		eng:   g,
		prune: prune,
		visit: visit,
		ends:  make([]int, g.n),
		masks: make([]uint64, g.n*W),
		used:  make([]uint64, (g.n+1)*W),
		free:  make([]uint64, (g.n+1)*W),
		sub:   make([]uint64, (g.n+1)*W),
		rest:  make([]uint64, 2*W),
		lat:   make([]float64, g.n+1),
		succ:  make([]float64, g.n+1),
	}
	s.succ[0] = 1
	if g.ev != nil && !g.replication {
		s.sib = make([]mapping.Sibling, g.m)
		s.prevProc = make([]int, g.n)
	}
	if g.memo != nil {
		s.memoIdx = make([]int64, g.n+1)
		s.memoIdx[0] = g.memo.FullIdx()
	}
	defer g.flushStats(&s.localStats)
	firstSub := bitset.Set(s.sub[:W]) // depth-0 subset scratch
	rest := bitset.Set(s.rest[:W])
	iterT := bitset.Set(s.rest[W:])
	for !g.abort.Load() {
		t := g.nextTask.Add(1) - 1
		if t >= g.totalTasks {
			return
		}
		end := int(t / g.subsPerEnd)
		p := int(t % g.subsPerEnd)
		s.task = t
		if !g.replication {
			// Singleton first interval {p}; it equals the full set only
			// when m = 1, in which case stages must not remain.
			if end < g.n-1 && g.m == 1 {
				continue
			}
			firstSub.Zero()
			firstSub.Add(p)
			if s.prevProc != nil {
				s.prevProc[0] = p
			}
			if !s.explore(0, 0, end, firstSub) {
				return
			}
			continue
		}
		// Replication: every first-interval set with lowest replica p is
		// {p} ∪ T, T ⊆ rest = {p+1, …, m−1}, T in decreasing DecAnd order
		// (T = rest first, T = ∅ — the singleton {p} — last).
		rest.Copy(g.fullW)
		for q := 0; q <= p; q++ {
			rest.Remove(q)
		}
		iterT.Copy(rest)
		for {
			firstSub.Copy(iterT)
			firstSub.Add(p)
			if !(end < g.n-1 && firstSub.Equal(g.fullW)) {
				if !s.explore(0, 0, end, firstSub) {
					return
				}
			}
			if iterT.IsZero() {
				break
			}
			iterT.DecAnd(rest)
		}
	}
}

// explore pushes interval d = [first, end] on replica set sub and, when
// the subtree survives pruning, recurses into the remaining stages. It
// returns false when the whole enumeration must stop (the engine-level
// abort), mirroring the narrow worker's push + rec pair.
func (s *searchWide) explore(d, first, end int, sub bitset.Set) bool {
	if !s.push(d, first, end, sub) {
		return true // pruned, keep enumerating siblings
	}
	s.usedRow(d+1).Or(s.usedRow(d), sub)
	return s.rec(end+1, d+1)
}

// push mirrors search.push for multi-word replica sets: it records the
// interval, extends the incremental latency and success-probability
// accumulators through the Evaluator's *W methods (same operation order,
// hence bitwise-identical complete-node metrics), and applies pruning.
func (s *searchWide) push(d, first, end int, sub bitset.Set) bool {
	ev := s.eng.ev
	s.ends[d] = end
	s.maskRow(d).Copy(sub)
	if ev == nil {
		return true
	}
	s.nodes++
	s.succ[d+1] = s.succ[d] * ev.SuccessFactorW(sub)
	var newLat, lb float64
	if s.eng.commHom {
		commIn, compute := ev.IntervalEq1CostW(first, end, sub)
		newLat = s.lat[d] + commIn
		newLat += compute
		lb = newLat + s.pushTail(d, end+1, sub)
	} else {
		if d == 0 {
			newLat = ev.InputSumW(sub)
		} else {
			prevFirst := 0
			if d > 1 {
				prevFirst = s.ends[d-2] + 1
			}
			newLat = s.lat[d] + ev.IntervalEq2TermW(prevFirst, s.ends[d-1], s.maskRow(d-1), sub)
		}
		lb = newLat + ev.IntervalComputeLBW(first, end, sub) + s.pushTail(d, end+1, sub)
	}
	s.lat[d+1] = newLat
	if s.prune != nil && s.prune(lb, 1-s.succ[d+1]) {
		s.prunes++
		return false
	}
	return true
}

// pushTail is the wide twin of search.pushTail: the tail bound on stages
// [start, n) below the depth-d interval on replica set sub, served by the
// suffix memo when one is attached.
func (s *searchWide) pushTail(d, start int, sub bitset.Set) float64 {
	g := s.eng
	if g.memo == nil {
		if g.commHom {
			s.memoMisses++
		}
		return g.ev.TailLatencyLB(start)
	}
	child := s.memoIdx[d]
	for w, word := range sub {
		wbase := w * bitset.WordBits
		for bm := word; bm != 0; bm &= bm - 1 {
			child -= g.memo.weight[wbase+bits.TrailingZeros64(bm)]
		}
	}
	s.memoIdx[d+1] = child
	if start >= g.n {
		return g.ev.TailLatencyLB(start) // exact final-output term
	}
	s.memoHits++
	return g.memo.Lookup(start, child)
}

// rec extends the partial mapping (stages [0, start) assigned, depth
// intervals chosen, usedRow(depth) enrolled) with every completion. It
// returns false when the whole enumeration must stop.
//
// Non-replication levels with an evaluator run the batch path of
// search.rec (engine.go documents the bitwise contract), scoring every
// singleton sibling of one (start, end) prefix through a single
// EvaluateManyW call and completing final-stage blocks inline.
func (s *searchWide) rec(start, depth int) bool {
	g := s.eng
	if g.abort.Load() {
		return false
	}
	if start == g.n {
		return s.complete(depth)
	}
	free := s.freeRow(depth)
	free.AndNot(g.fullW, s.usedRow(depth))
	if free.IsZero() {
		return true
	}
	last := g.n - 1
	if g.replication || g.ev == nil {
		for end := start; end <= last; end++ {
			if g.replication {
				sub := s.subRow(depth)
				sub.Copy(free)
				for {
					if !(end < last && sub.Equal(free)) {
						if !s.explore(depth, start, end, sub) {
							return false
						}
					}
					if !sub.DecAnd(free) {
						break
					}
				}
			} else {
				sub := s.subRow(depth)
				freeIsSingleton := free.Count() == 1
				for u := free.NextOne(0); u >= 0; u = free.NextOne(u + 1) {
					if end < last && freeIsSingleton {
						continue // sub == free: no processor left for the rest
					}
					sub.Zero()
					sub.Add(u)
					if !s.explore(depth, start, end, sub) {
						return false
					}
				}
			}
		}
		return true
	}
	ev := g.ev
	pre := mapping.BatchPrefix{Depth: depth, Lat: s.lat[depth], Succ: s.succ[depth]}
	if !g.commHom {
		// rec always runs at depth ≥ 1 (the first interval comes from the
		// task loop), so interval depth−1 exists and is a singleton.
		pre.PrevLast = s.ends[depth-1]
		if depth > 1 {
			pre.PrevFirst = s.ends[depth-2] + 1
		}
		pre.PrevProc = s.prevProc[depth-1]
	}
	freeSingleton := free.Count() == 1
	for end := start; end <= last; end++ {
		if end < last && freeSingleton {
			continue // the lone free processor must serve the final interval
		}
		nb := ev.EvaluateManyW(pre, start, end, free, s.sib)
		s.batchCalls++
		s.batchCands += int64(nb)
		s.nodes += int64(nb)
		if end == last {
			if !s.completeBatch(depth, end, nb) {
				return false
			}
			continue
		}
		var tail float64
		if g.memo == nil {
			tail = ev.TailLatencyLB(end + 1)
			if g.commHom {
				s.memoMisses += int64(nb)
			}
		}
		for i := 0; i < nb; i++ {
			sb := &s.sib[i]
			var lb float64
			if g.memo != nil {
				child := s.memoIdx[depth] - g.memo.weight[sb.Proc]
				s.memoIdx[depth+1] = child
				s.memoHits++
				lb = sb.LB + g.memo.Lookup(end+1, child)
			} else {
				lb = sb.LB + tail
			}
			if s.prune != nil && s.prune(lb, 1-sb.Succ) {
				s.prunes++
				continue
			}
			s.ends[depth] = end
			mrow := s.maskRow(depth)
			mrow.Zero()
			mrow.Add(sb.Proc)
			s.prevProc[depth] = sb.Proc
			s.lat[depth+1] = sb.Lat
			s.succ[depth+1] = sb.Succ
			s.usedRow(depth+1).Or(s.usedRow(depth), mrow)
			if !s.rec(end+1, depth+1) {
				return false
			}
		}
	}
	return true
}

// completeBatch is the wide twin of search.completeBatch: surviving
// final-stage siblings are budget-charged and visited inline with the
// metrics EvaluateManyW already produced.
func (s *searchWide) completeBatch(depth, end, nb int) bool {
	g := s.eng
	tailN := g.ev.TailLatencyLB(g.n)
	var met mapping.Metrics
	for i := 0; i < nb; i++ {
		sb := &s.sib[i]
		if s.prune != nil && s.prune(sb.LB+tailN, 1-sb.Succ) {
			s.prunes++
			continue
		}
		if g.counter.Add(1) > g.budget {
			g.overBudget.Store(true)
			g.abort.Store(true)
			return false
		}
		met.Latency = sb.Final
		met.FailureProb = 1 - sb.Succ
		s.ends[depth] = end
		mrow := s.maskRow(depth)
		mrow.Zero()
		mrow.Add(sb.Proc)
		if !s.visit(s.task, s.ends[:depth+1], s.masks[:(depth+1)*g.stride], met) {
			g.abort.Store(true)
			return false
		}
	}
	return true
}

// complete finalizes the candidate's metrics and hands it to the
// visitor, charging the enumeration budget — the wide twin of
// search.complete.
func (s *searchWide) complete(depth int) bool {
	g := s.eng
	if g.counter.Add(1) > g.budget {
		g.overBudget.Store(true)
		g.abort.Store(true)
		return false
	}
	var met mapping.Metrics
	if ev := g.ev; ev != nil {
		if g.commHom {
			met.Latency = s.lat[depth] + ev.TailLatencyLB(g.n) // exact δ_n/b
		} else {
			first := 0
			if depth > 1 {
				first = s.ends[depth-2] + 1
			}
			met.Latency = s.lat[depth] + ev.IntervalEq2FinalTermW(first, s.ends[depth-1], s.maskRow(depth-1))
		}
		met.FailureProb = 1 - s.succ[depth]
	}
	if !s.visit(s.task, s.ends[:depth], s.masks[:depth*g.stride], met) {
		g.abort.Store(true)
		return false
	}
	return true
}
