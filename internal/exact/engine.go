package exact

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/mapping"
	"repro/internal/telemetry"
)

// This file is the shared enumeration engine behind the four exact
// solvers and the throughput package's tri-criteria enumeration. It
// replaces the per-node [][]int materialization of the original
// enumerators with interval end boundaries + replica bitmasks, evaluates
// candidates incrementally through mapping.Evaluator with zero heap
// allocations, supports branch-and-bound pruning (prefix latency lower
// bound / monotone failure-probability prefix against an incumbent or a
// threshold), and fans the search out over worker goroutines by the
// choice of the first interval — its last stage and its replica set —
// exactly the decomposition ParetoFrontParallel pioneered.
//
// Two mask representations share the engine scaffolding (task claiming,
// budget, abort flag, incumbent, cancellation watcher):
//
//   - the narrow search of this file keeps replica sets in uint64
//     registers and covers m ≤ 64 (m ≤ 62 with replication, where task
//     indices pack end·(2^m−1)+subset into an int64);
//   - the wide search of enginewide.go stores replica sets as multi-word
//     bitset rows in flat per-depth buffers and covers any m, fanning out
//     by (first-interval end, lowest replica id) instead.
//
// Both paths run identical pruning, budget accounting, tie-breaking and
// cancellation; visitors receive masks as a flat []uint64 buffer of
// engine.stride words per interval (stride 1 on the narrow path, i.e.
// exactly the legacy one-word-per-interval slice).
//
// Determinism: every complete mapping is reported together with the index
// of the first-interval subtree (task) it belongs to, tasks are
// enumerated in a fixed order, and each subtree is explored sequentially
// by exactly one worker. Incumbent pruning is strict (subtrees are cut
// only when provably worse than the incumbent, never on ties), so
// merging per-worker results in task order yields the same answer for
// every worker count.

// pruneFunc decides whether to cut the subtree below a partial mapping.
// lbLat is a lower bound on the latency of every completion; prefixFP is
// the failure probability of the already-assigned intervals (a lower
// bound as well: FP is non-decreasing in added intervals).
type pruneFunc func(lbLat, prefixFP float64) bool

// visitFunc receives each complete enumerated mapping: the subtree index
// it was found in, its boundary representation (reused between calls —
// copy to retain; masks is a flat buffer of engine.stride words per
// interval), and its metrics (zero when the engine runs without an
// Evaluator). Returning false stops the whole enumeration early.
type visitFunc func(task int64, ends []int, masks []uint64, met mapping.Metrics) bool

// engine carries the state shared by all workers of one enumeration.
type engine struct {
	ev          *mapping.Evaluator // nil: enumerate only, no metrics/pruning
	n, m        int
	stride      int        // bitset words per replica set (1 when m ≤ 64)
	wide        bool       // multi-word search + (end, min replica) tasks
	full        uint64     // narrow only: the all-processors mask
	fullW       bitset.Set // wide only: the all-processors set
	replication bool
	commHom     bool

	ctx        context.Context // nil: never canceled
	budget     int64
	counter    atomic.Int64 // complete mappings evaluated
	abort      atomic.Bool
	overBudget atomic.Bool
	canceled   atomic.Bool
	rec        *telemetry.Recorder // nil: no telemetry
	memo       *SuffixMemo         // nil: TailLatencyLB only (see Options.SuffixMemo)

	nextTask   atomic.Int64
	totalTasks int64
	subsPerEnd int64

	stats searchStats // aggregated worker-local counters (flushed at worker exit)
}

// searchStats aggregates the per-worker search telemetry. Workers count
// into plain int64 locals and flush once when they exit, so the hot path
// never touches shared cache lines; engine.run folds the aggregate into
// the telemetry registry after the fan-out completes.
type searchStats struct {
	nodes      atomic.Int64 // candidate nodes scored (batch siblings + pushes)
	prunes     atomic.Int64 // subtrees cut by the shared bound / constraint
	memoHits   atomic.Int64 // tail bounds served by the suffix memo
	memoMisses atomic.Int64 // comm-hom tail bounds that fell back to TailLatencyLB
	batchCalls atomic.Int64 // EvaluateMany block calls
	batchCands atomic.Int64 // siblings scored across those blocks
}

// localStats is the per-worker face of searchStats.
type localStats struct {
	nodes, prunes, memoHits, memoMisses, batchCalls, batchCands int64
}

func (g *engine) flushStats(l *localStats) {
	g.stats.nodes.Add(l.nodes)
	g.stats.prunes.Add(l.prunes)
	g.stats.memoHits.Add(l.memoHits)
	g.stats.memoMisses.Add(l.memoMisses)
	g.stats.batchCalls.Add(l.batchCalls)
	g.stats.batchCands.Add(l.batchCands)
}

func newEngine(ev *mapping.Evaluator, n, m int, opts Options) (*engine, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("exact: need n>0 and m>0, got n=%d m=%d", n, m)
	}
	g := &engine{
		ev:          ev,
		n:           n,
		m:           m,
		stride:      bitset.Words(m),
		replication: opts.Replication,
		ctx:         opts.Ctx,
		budget:      opts.maxEnum(),
		rec:         opts.Recorder,
	}
	if ev != nil {
		g.commHom = ev.CommHom()
	}
	// The suffix memo sharpens the comm-hom tail bound only; it must
	// describe the same instance (caller contract, like Options.Eval).
	if sm := opts.SuffixMemo; sm != nil && ev != nil && g.commHom && sm.n == n && sm.m == m {
		g.memo = sm
	}
	// The narrow (uint64-register) search covers m ≤ 64; with replication
	// its task indices pack end·(2^m−1)+subset into an int64, so m ≤ 62.
	// Beyond either limit the multi-word wide search takes over with the
	// overflow-free (end, lowest replica id) task decomposition.
	g.wide = opts.forceWide || m > mapping.MaxEvalProcs ||
		(opts.Replication && m > maxReplicationProcs)
	if g.wide {
		g.fullW = bitset.Make(m)
		g.fullW.Fill(m)
		g.subsPerEnd = int64(m)
	} else {
		if m == 64 {
			g.full = ^uint64(0)
		} else {
			g.full = 1<<uint(m) - 1
		}
		if opts.Replication {
			g.subsPerEnd = int64(1)<<uint(m) - 1
		} else {
			g.subsPerEnd = int64(m)
		}
	}
	if int64(n) > math.MaxInt64/g.subsPerEnd {
		return nil, fmt.Errorf("exact: instance too large to enumerate (n=%d, m=%d)", n, m)
	}
	g.totalTasks = int64(n) * g.subsPerEnd
	return g, nil
}

// run drains the task space with the given worker count. newWorker is
// invoked once per worker (with indices 0..workers-1) and returns that
// worker's prune and visit hooks; prune may be nil.
//
// When the engine carries a cancellable context, a watcher goroutine
// flips the abort flag as soon as the context is done; every worker
// checks that flag on each recursion entry, so cancellation latency is
// bounded by one sibling block (the m candidates a single EvaluateMany
// call scores), not one subtree. A canceled run returns an error
// wrapping both ErrCanceled and the context's cause.
func (g *engine) run(workers int, newWorker func(w int) (pruneFunc, visitFunc)) error {
	if g.rec != nil {
		// One-shot accounting per run: the inner loop never touches the
		// recorder, so the nil-recorder path and the hot path are identical.
		started := time.Now()
		defer func() {
			g.rec.Counter("exact_runs_total").Inc()
			g.rec.Counter("exact_enumerated_total").Add(g.counter.Load())
			g.rec.Counter("exact_nodes_total").Add(g.stats.nodes.Load())
			g.rec.Counter("exact_incumbent_prunes_total").Add(g.stats.prunes.Load())
			g.rec.Counter("exact_memo_hits_total").Add(g.stats.memoHits.Load())
			g.rec.Counter("exact_memo_misses_total").Add(g.stats.memoMisses.Load())
			g.rec.Counter("exact_batch_calls_total").Add(g.stats.batchCalls.Load())
			g.rec.Counter("exact_batch_candidates_total").Add(g.stats.batchCands.Load())
			g.rec.Observe("exact_search_duration", time.Since(started))
		}()
	}
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if int64(workers) > g.totalTasks {
		workers = int(g.totalTasks)
	}
	var stopWatch chan struct{}
	if g.ctx != nil {
		if done := g.ctx.Done(); done != nil {
			stopWatch = make(chan struct{})
			go func() {
				select {
				case <-done:
					g.canceled.Store(true)
					g.abort.Store(true)
				case <-stopWatch:
				}
			}()
		}
	}
	if workers <= 1 {
		prune, visit := newWorker(0)
		g.runWorker(prune, visit)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			prune, visit := newWorker(w)
			wg.Add(1)
			go func() {
				defer wg.Done()
				g.runWorker(prune, visit)
			}()
		}
		wg.Wait()
	}
	if stopWatch != nil {
		close(stopWatch)
	}
	if g.canceled.Load() {
		return canceledErr(g.ctx)
	}
	if g.overBudget.Load() {
		return ErrBudget
	}
	return nil
}

// runWorker dispatches one worker onto the mask representation the
// engine selected at construction.
func (g *engine) runWorker(prune pruneFunc, visit visitFunc) {
	if g.wide {
		g.workerWide(prune, visit)
	} else {
		g.worker(prune, visit)
	}
}

// worker claims first-interval subtrees until the space or the budget is
// exhausted.
func (g *engine) worker(prune pruneFunc, visit visitFunc) {
	s := &search{
		eng:   g,
		prune: prune,
		visit: visit,
		ends:  make([]int, g.n),
		masks: make([]uint64, g.n),
		lat:   make([]float64, g.n+1),
		succ:  make([]float64, g.n+1),
	}
	s.succ[0] = 1
	if g.ev != nil && !g.replication {
		s.sib = make([]mapping.Sibling, g.m)
	}
	if g.memo != nil {
		s.memoIdx = make([]int64, g.n+1)
		s.memoIdx[0] = g.memo.FullIdx()
	}
	defer g.flushStats(&s.localStats)
	for !g.abort.Load() {
		t := g.nextTask.Add(1) - 1
		if t >= g.totalTasks {
			return
		}
		end := int(t / g.subsPerEnd)
		var sub uint64
		if g.replication {
			sub = uint64(t%g.subsPerEnd) + 1
		} else {
			sub = 1 << uint(t%g.subsPerEnd)
		}
		if end < g.n-1 && sub == g.full {
			continue // no processor left for the remaining stages
		}
		s.task = t
		if !s.push(0, 0, end, sub) {
			continue // pruned at the root
		}
		if !s.rec(end+1, sub, 1) {
			return
		}
	}
}

// search is one worker's private state. All slices are indexed by depth
// (the number of intervals already chosen) so descending and backtracking
// never allocate and never need undo writes.
type search struct {
	eng   *engine
	prune pruneFunc
	visit visitFunc
	task  int64

	ends  []int
	masks []uint64
	// sib is the batch-evaluation scratch: every non-replication level
	// scores all singleton siblings of one (start, end) prefix through a
	// single Evaluator.EvaluateMany call (m entries, allocated once per
	// worker, so the per-node path stays allocation-free).
	sib []mapping.Sibling
	// memoIdx[d] is the canonical free-multiset key after d intervals
	// (suffix-memo engines only), maintained incrementally: child key =
	// parent key − Σ weight(replica).
	memoIdx []int64
	localStats
	// lat[d] is the charged latency after d intervals: on comm-hom
	// platforms the full Eq. (1) terms of intervals 0..d-1; on fully
	// heterogeneous platforms the Eq. (2) input sum plus the full terms of
	// intervals 0..d-2 (interval d-1's term needs its successor set and is
	// charged when that successor is chosen).
	lat []float64
	// succ[d] is the success-probability product over intervals 0..d-1.
	succ []float64
}

// push records interval d = [first, end] on replica set sub, extends the
// incremental accumulators, and applies pruning. It reports whether the
// subtree should be explored. The accumulation mirrors the slice-based
// evaluators addition for addition so complete-node metrics are bitwise
// identical to mapping.Evaluate.
func (s *search) push(d, first, end int, sub uint64) bool {
	ev := s.eng.ev
	s.ends[d] = end
	s.masks[d] = sub
	if ev == nil {
		return true
	}
	s.nodes++
	s.succ[d+1] = s.succ[d] * ev.SuccessFactor(sub)
	var newLat, lb float64
	if s.eng.commHom {
		commIn, compute := ev.IntervalEq1Cost(first, end, sub)
		newLat = s.lat[d] + commIn
		newLat += compute
		lb = newLat + s.pushTail(d, end+1, sub)
	} else {
		if d == 0 {
			newLat = ev.InputSum(sub)
		} else {
			prevFirst := 0
			if d > 1 {
				prevFirst = s.ends[d-2] + 1
			}
			newLat = s.lat[d] + ev.IntervalEq2Term(prevFirst, s.ends[d-1], s.masks[d-1], sub)
		}
		lb = newLat + ev.IntervalComputeLB(first, end, sub) + s.pushTail(d, end+1, sub)
	}
	s.lat[d+1] = newLat
	if s.prune != nil && s.prune(lb, 1-s.succ[d+1]) {
		s.prunes++
		return false
	}
	return true
}

// pushTail returns the tail bound on stages [start, n) for the subtree
// rooted at the depth-d interval on replica set sub, maintaining the
// suffix-memo key when a memo is attached and falling back to the
// evaluator's static TailLatencyLB otherwise.
func (s *search) pushTail(d, start int, sub uint64) float64 {
	g := s.eng
	if g.memo == nil {
		if g.commHom {
			s.memoMisses++
		}
		return g.ev.TailLatencyLB(start)
	}
	child := s.memoIdx[d]
	for bm := sub; bm != 0; bm &= bm - 1 {
		child -= g.memo.weight[bits.TrailingZeros64(bm)]
	}
	s.memoIdx[d+1] = child
	if start >= g.n {
		return g.ev.TailLatencyLB(start) // exact final-output term
	}
	s.memoHits++
	return g.memo.Lookup(start, child)
}

// rec extends the partial mapping (stages [0, start) assigned on the
// processors in used, depth intervals chosen) with every completion.
// It returns false when the whole enumeration must stop.
//
// Non-replication levels with an evaluator run the batch path: one
// EvaluateMany call scores every singleton sibling of the (start, end)
// prefix — sharing the previous interval's Eq. (2) term, the Eq. (1)
// input transfer and the work window across the block — and final-stage
// blocks complete inline, skipping the per-candidate push/rec/complete
// chain entirely. Candidate order, pruning decisions, budget charging and
// visit order are identical to the single-candidate path, so outputs are
// bitwise-unchanged.
func (s *search) rec(start int, used uint64, depth int) bool {
	g := s.eng
	if g.abort.Load() {
		return false
	}
	if start == g.n {
		return s.complete(depth)
	}
	free := g.full &^ used
	if free == 0 {
		return true
	}
	last := g.n - 1
	if g.replication || g.ev == nil {
		for end := start; end <= last; end++ {
			if g.replication {
				for sub := free; sub != 0; sub = (sub - 1) & free {
					if end < last && sub == free {
						continue
					}
					if !s.push(depth, start, end, sub) {
						continue
					}
					if !s.rec(end+1, used|sub, depth+1) {
						return false
					}
				}
			} else {
				for bm := free; bm != 0; bm &= bm - 1 {
					sub := bm & -bm
					if end < last && sub == free {
						continue
					}
					if !s.push(depth, start, end, sub) {
						continue
					}
					if !s.rec(end+1, used|sub, depth+1) {
						return false
					}
				}
			}
		}
		return true
	}
	ev := g.ev
	pre := mapping.BatchPrefix{Depth: depth, Lat: s.lat[depth], Succ: s.succ[depth]}
	if !g.commHom {
		// rec always runs at depth ≥ 1 (the first interval is pushed by the
		// task loop), so the previous interval exists and — non-replication
		// — is a singleton.
		pre.PrevLast = s.ends[depth-1]
		if depth > 1 {
			pre.PrevFirst = s.ends[depth-2] + 1
		}
		pre.PrevProc = bits.TrailingZeros64(s.masks[depth-1])
	}
	freeSingleton := free&(free-1) == 0
	for end := start; end <= last; end++ {
		if end < last && freeSingleton {
			continue // the lone free processor must serve the final interval
		}
		nb := ev.EvaluateMany(pre, start, end, free, s.sib)
		s.batchCalls++
		s.batchCands += int64(nb)
		s.nodes += int64(nb)
		if end == last {
			if !s.completeBatch(depth, end, nb) {
				return false
			}
			continue
		}
		var tail float64
		if g.memo == nil {
			tail = ev.TailLatencyLB(end + 1)
			if g.commHom {
				s.memoMisses += int64(nb)
			}
		}
		for i := 0; i < nb; i++ {
			sb := &s.sib[i]
			var lb float64
			if g.memo != nil {
				child := s.memoIdx[depth] - g.memo.weight[sb.Proc]
				s.memoIdx[depth+1] = child
				s.memoHits++
				lb = sb.LB + g.memo.Lookup(end+1, child)
			} else {
				lb = sb.LB + tail
			}
			if s.prune != nil && s.prune(lb, 1-sb.Succ) {
				s.prunes++
				continue
			}
			bit := uint64(1) << uint(sb.Proc)
			s.ends[depth] = end
			s.masks[depth] = bit
			s.lat[depth+1] = sb.Lat
			s.succ[depth+1] = sb.Succ
			if !s.rec(end+1, used|bit, depth+1) {
				return false
			}
		}
	}
	return true
}

// completeBatch finalizes a final-stage sibling block inline: each
// surviving candidate is budget-charged and visited with the metrics the
// batch evaluation already produced — bitwise those of the push/complete
// chain it replaces.
func (s *search) completeBatch(depth, end, nb int) bool {
	g := s.eng
	tailN := g.ev.TailLatencyLB(g.n)
	var met mapping.Metrics
	for i := 0; i < nb; i++ {
		sb := &s.sib[i]
		if s.prune != nil && s.prune(sb.LB+tailN, 1-sb.Succ) {
			s.prunes++
			continue
		}
		if g.counter.Add(1) > g.budget {
			g.overBudget.Store(true)
			g.abort.Store(true)
			return false
		}
		met.Latency = sb.Final
		met.FailureProb = 1 - sb.Succ
		s.ends[depth] = end
		s.masks[depth] = uint64(1) << uint(sb.Proc)
		if !s.visit(s.task, s.ends[:depth+1], s.masks[:depth+1], met) {
			g.abort.Store(true)
			return false
		}
	}
	return true
}

// complete finalizes the candidate's metrics and hands it to the visitor,
// charging the enumeration budget.
func (s *search) complete(depth int) bool {
	g := s.eng
	if g.counter.Add(1) > g.budget {
		g.overBudget.Store(true)
		g.abort.Store(true)
		return false
	}
	var met mapping.Metrics
	if ev := g.ev; ev != nil {
		if g.commHom {
			met.Latency = s.lat[depth] + ev.TailLatencyLB(g.n) // exact δ_n/b
		} else {
			first := 0
			if depth > 1 {
				first = s.ends[depth-2] + 1
			}
			met.Latency = s.lat[depth] + ev.IntervalEq2FinalTerm(first, s.ends[depth-1], s.masks[depth-1])
		}
		met.FailureProb = 1 - s.succ[depth]
	}
	if !s.visit(s.task, s.ends[:depth], s.masks[:depth], met) {
		g.abort.Store(true)
		return false
	}
	return true
}

// fillMaskedMapping converts a boundary representation (flat masks,
// stride words per interval) into dst without allocating: dst's slices
// are resliced and the replica ids written into procBuf (which must hold
// at least m ints).
func fillMaskedMapping(dst *mapping.Mapping, procBuf []int, ends []int, masks []uint64, stride int) *mapping.Mapping {
	dst.Intervals = dst.Intervals[:0]
	dst.Alloc = dst.Alloc[:0]
	first := 0
	used := 0
	for j, end := range ends {
		dst.Intervals = append(dst.Intervals, mapping.Interval{First: first, Last: end})
		row := bitset.Set(masks[j*stride : (j+1)*stride])
		out := row.AppendBits(procBuf[used:used])
		used += len(out)
		dst.Alloc = append(dst.Alloc, out[:len(out):len(out)])
		first = end + 1
	}
	return dst
}
