package exact

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/mapping"
	"repro/internal/telemetry"
)

// This file is the shared enumeration engine behind the four exact
// solvers and the throughput package's tri-criteria enumeration. It
// replaces the per-node [][]int materialization of the original
// enumerators with interval end boundaries + replica bitmasks, evaluates
// candidates incrementally through mapping.Evaluator with zero heap
// allocations, supports branch-and-bound pruning (prefix latency lower
// bound / monotone failure-probability prefix against an incumbent or a
// threshold), and fans the search out over worker goroutines by the
// choice of the first interval — its last stage and its replica set —
// exactly the decomposition ParetoFrontParallel pioneered.
//
// Two mask representations share the engine scaffolding (task claiming,
// budget, abort flag, incumbent, cancellation watcher):
//
//   - the narrow search of this file keeps replica sets in uint64
//     registers and covers m ≤ 64 (m ≤ 62 with replication, where task
//     indices pack end·(2^m−1)+subset into an int64);
//   - the wide search of enginewide.go stores replica sets as multi-word
//     bitset rows in flat per-depth buffers and covers any m, fanning out
//     by (first-interval end, lowest replica id) instead.
//
// Both paths run identical pruning, budget accounting, tie-breaking and
// cancellation; visitors receive masks as a flat []uint64 buffer of
// engine.stride words per interval (stride 1 on the narrow path, i.e.
// exactly the legacy one-word-per-interval slice).
//
// Determinism: every complete mapping is reported together with the index
// of the first-interval subtree (task) it belongs to, tasks are
// enumerated in a fixed order, and each subtree is explored sequentially
// by exactly one worker. Incumbent pruning is strict (subtrees are cut
// only when provably worse than the incumbent, never on ties), so
// merging per-worker results in task order yields the same answer for
// every worker count.

// pruneFunc decides whether to cut the subtree below a partial mapping.
// lbLat is a lower bound on the latency of every completion; prefixFP is
// the failure probability of the already-assigned intervals (a lower
// bound as well: FP is non-decreasing in added intervals).
type pruneFunc func(lbLat, prefixFP float64) bool

// visitFunc receives each complete enumerated mapping: the subtree index
// it was found in, its boundary representation (reused between calls —
// copy to retain; masks is a flat buffer of engine.stride words per
// interval), and its metrics (zero when the engine runs without an
// Evaluator). Returning false stops the whole enumeration early.
type visitFunc func(task int64, ends []int, masks []uint64, met mapping.Metrics) bool

// engine carries the state shared by all workers of one enumeration.
type engine struct {
	ev          *mapping.Evaluator // nil: enumerate only, no metrics/pruning
	n, m        int
	stride      int        // bitset words per replica set (1 when m ≤ 64)
	wide        bool       // multi-word search + (end, min replica) tasks
	full        uint64     // narrow only: the all-processors mask
	fullW       bitset.Set // wide only: the all-processors set
	replication bool
	commHom     bool

	ctx        context.Context // nil: never canceled
	budget     int64
	counter    atomic.Int64 // complete mappings evaluated
	abort      atomic.Bool
	overBudget atomic.Bool
	canceled   atomic.Bool
	rec        *telemetry.Recorder // nil: no telemetry

	nextTask   atomic.Int64
	totalTasks int64
	subsPerEnd int64
}

func newEngine(ev *mapping.Evaluator, n, m int, opts Options) (*engine, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("exact: need n>0 and m>0, got n=%d m=%d", n, m)
	}
	g := &engine{
		ev:          ev,
		n:           n,
		m:           m,
		stride:      bitset.Words(m),
		replication: opts.Replication,
		ctx:         opts.Ctx,
		budget:      opts.maxEnum(),
		rec:         opts.Recorder,
	}
	if ev != nil {
		g.commHom = ev.CommHom()
	}
	// The narrow (uint64-register) search covers m ≤ 64; with replication
	// its task indices pack end·(2^m−1)+subset into an int64, so m ≤ 62.
	// Beyond either limit the multi-word wide search takes over with the
	// overflow-free (end, lowest replica id) task decomposition.
	g.wide = opts.forceWide || m > mapping.MaxEvalProcs ||
		(opts.Replication && m > maxReplicationProcs)
	if g.wide {
		g.fullW = bitset.Make(m)
		g.fullW.Fill(m)
		g.subsPerEnd = int64(m)
	} else {
		if m == 64 {
			g.full = ^uint64(0)
		} else {
			g.full = 1<<uint(m) - 1
		}
		if opts.Replication {
			g.subsPerEnd = int64(1)<<uint(m) - 1
		} else {
			g.subsPerEnd = int64(m)
		}
	}
	if int64(n) > math.MaxInt64/g.subsPerEnd {
		return nil, fmt.Errorf("exact: instance too large to enumerate (n=%d, m=%d)", n, m)
	}
	g.totalTasks = int64(n) * g.subsPerEnd
	return g, nil
}

// run drains the task space with the given worker count. newWorker is
// invoked once per worker (with indices 0..workers-1) and returns that
// worker's prune and visit hooks; prune may be nil.
//
// When the engine carries a cancellable context, a watcher goroutine
// flips the abort flag as soon as the context is done; every worker
// checks that flag at each search node, so cancellation latency is one
// node expansion, not one subtree. A canceled run returns an error
// wrapping both ErrCanceled and the context's cause.
func (g *engine) run(workers int, newWorker func(w int) (pruneFunc, visitFunc)) error {
	if g.rec != nil {
		// One-shot accounting per run: the inner loop never touches the
		// recorder, so the nil-recorder path and the hot path are identical.
		started := time.Now()
		defer func() {
			g.rec.Counter("exact_runs_total").Inc()
			g.rec.Counter("exact_enumerated_total").Add(g.counter.Load())
			g.rec.Observe("exact_search_duration", time.Since(started))
		}()
	}
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if int64(workers) > g.totalTasks {
		workers = int(g.totalTasks)
	}
	var stopWatch chan struct{}
	if g.ctx != nil {
		if done := g.ctx.Done(); done != nil {
			stopWatch = make(chan struct{})
			go func() {
				select {
				case <-done:
					g.canceled.Store(true)
					g.abort.Store(true)
				case <-stopWatch:
				}
			}()
		}
	}
	if workers <= 1 {
		prune, visit := newWorker(0)
		g.runWorker(prune, visit)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			prune, visit := newWorker(w)
			wg.Add(1)
			go func() {
				defer wg.Done()
				g.runWorker(prune, visit)
			}()
		}
		wg.Wait()
	}
	if stopWatch != nil {
		close(stopWatch)
	}
	if g.canceled.Load() {
		return canceledErr(g.ctx)
	}
	if g.overBudget.Load() {
		return ErrBudget
	}
	return nil
}

// runWorker dispatches one worker onto the mask representation the
// engine selected at construction.
func (g *engine) runWorker(prune pruneFunc, visit visitFunc) {
	if g.wide {
		g.workerWide(prune, visit)
	} else {
		g.worker(prune, visit)
	}
}

// worker claims first-interval subtrees until the space or the budget is
// exhausted.
func (g *engine) worker(prune pruneFunc, visit visitFunc) {
	s := &search{
		eng:   g,
		prune: prune,
		visit: visit,
		ends:  make([]int, g.n),
		masks: make([]uint64, g.n),
		lat:   make([]float64, g.n+1),
		succ:  make([]float64, g.n+1),
	}
	s.succ[0] = 1
	for !g.abort.Load() {
		t := g.nextTask.Add(1) - 1
		if t >= g.totalTasks {
			return
		}
		end := int(t / g.subsPerEnd)
		var sub uint64
		if g.replication {
			sub = uint64(t%g.subsPerEnd) + 1
		} else {
			sub = 1 << uint(t%g.subsPerEnd)
		}
		if end < g.n-1 && sub == g.full {
			continue // no processor left for the remaining stages
		}
		s.task = t
		if !s.push(0, 0, end, sub) {
			continue // pruned at the root
		}
		if !s.rec(end+1, sub, 1) {
			return
		}
	}
}

// search is one worker's private state. All slices are indexed by depth
// (the number of intervals already chosen) so descending and backtracking
// never allocate and never need undo writes.
type search struct {
	eng   *engine
	prune pruneFunc
	visit visitFunc
	task  int64

	ends  []int
	masks []uint64
	// lat[d] is the charged latency after d intervals: on comm-hom
	// platforms the full Eq. (1) terms of intervals 0..d-1; on fully
	// heterogeneous platforms the Eq. (2) input sum plus the full terms of
	// intervals 0..d-2 (interval d-1's term needs its successor set and is
	// charged when that successor is chosen).
	lat []float64
	// succ[d] is the success-probability product over intervals 0..d-1.
	succ []float64
}

// push records interval d = [first, end] on replica set sub, extends the
// incremental accumulators, and applies pruning. It reports whether the
// subtree should be explored. The accumulation mirrors the slice-based
// evaluators addition for addition so complete-node metrics are bitwise
// identical to mapping.Evaluate.
func (s *search) push(d, first, end int, sub uint64) bool {
	ev := s.eng.ev
	s.ends[d] = end
	s.masks[d] = sub
	if ev == nil {
		return true
	}
	s.succ[d+1] = s.succ[d] * ev.SuccessFactor(sub)
	var newLat, lb float64
	if s.eng.commHom {
		commIn, compute := ev.IntervalEq1Cost(first, end, sub)
		newLat = s.lat[d] + commIn
		newLat += compute
		lb = newLat + ev.TailLatencyLB(end+1)
	} else {
		if d == 0 {
			newLat = ev.InputSum(sub)
		} else {
			prevFirst := 0
			if d > 1 {
				prevFirst = s.ends[d-2] + 1
			}
			newLat = s.lat[d] + ev.IntervalEq2Term(prevFirst, s.ends[d-1], s.masks[d-1], sub)
		}
		lb = newLat + ev.IntervalComputeLB(first, end, sub) + ev.TailLatencyLB(end+1)
	}
	s.lat[d+1] = newLat
	if s.prune != nil && s.prune(lb, 1-s.succ[d+1]) {
		return false
	}
	return true
}

// rec extends the partial mapping (stages [0, start) assigned on the
// processors in used, depth intervals chosen) with every completion.
// It returns false when the whole enumeration must stop.
func (s *search) rec(start int, used uint64, depth int) bool {
	g := s.eng
	if g.abort.Load() {
		return false
	}
	if start == g.n {
		return s.complete(depth)
	}
	free := g.full &^ used
	if free == 0 {
		return true
	}
	last := g.n - 1
	for end := start; end <= last; end++ {
		if g.replication {
			for sub := free; sub != 0; sub = (sub - 1) & free {
				if end < last && sub == free {
					continue
				}
				if !s.push(depth, start, end, sub) {
					continue
				}
				if !s.rec(end+1, used|sub, depth+1) {
					return false
				}
			}
		} else {
			for bm := free; bm != 0; bm &= bm - 1 {
				sub := bm & -bm
				if end < last && sub == free {
					continue
				}
				if !s.push(depth, start, end, sub) {
					continue
				}
				if !s.rec(end+1, used|sub, depth+1) {
					return false
				}
			}
		}
	}
	return true
}

// complete finalizes the candidate's metrics and hands it to the visitor,
// charging the enumeration budget.
func (s *search) complete(depth int) bool {
	g := s.eng
	if g.counter.Add(1) > g.budget {
		g.overBudget.Store(true)
		g.abort.Store(true)
		return false
	}
	var met mapping.Metrics
	if ev := g.ev; ev != nil {
		if g.commHom {
			met.Latency = s.lat[depth] + ev.TailLatencyLB(g.n) // exact δ_n/b
		} else {
			first := 0
			if depth > 1 {
				first = s.ends[depth-2] + 1
			}
			met.Latency = s.lat[depth] + ev.IntervalEq2FinalTerm(first, s.ends[depth-1], s.masks[depth-1])
		}
		met.FailureProb = 1 - s.succ[depth]
	}
	if !s.visit(s.task, s.ends[:depth], s.masks[:depth], met) {
		g.abort.Store(true)
		return false
	}
	return true
}

// atomicMin is a lock-free monotone float64 minimum used as the shared
// pruning bound.
type atomicMin struct{ bits atomic.Uint64 }

func newAtomicMin() *atomicMin {
	a := &atomicMin{}
	a.bits.Store(math.Float64bits(math.Inf(1)))
	return a
}

func (a *atomicMin) load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicMin) min(x float64) {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) <= x {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

// incumbent tracks the best candidate across workers with a deterministic
// total order: the solver's metric comparator first, then the task index
// of discovery (so the result is independent of worker count and
// scheduling). The objective value is mirrored into an atomicMin for
// cheap lock-free pruning reads.
type incumbent struct {
	mu     sync.Mutex
	found  bool
	met    mapping.Metrics
	task   int64
	ends   []int
	masks  []uint64 // flat, stride words per interval
	stride int
	nEnds  int
	bound  *atomicMin
	cmp    func(a, b mapping.Metrics) int // <0: a strictly better
	objOf  func(met mapping.Metrics) float64
}

func newIncumbent(n, stride int, cmp func(a, b mapping.Metrics) int, objOf func(mapping.Metrics) float64) *incumbent {
	return &incumbent{
		ends:   make([]int, n),
		masks:  make([]uint64, n*stride),
		stride: stride,
		bound:  newAtomicMin(),
		cmp:    cmp,
		objOf:  objOf,
	}
}

// offer proposes a feasible candidate. The fast path rejects without the
// lock when the objective is strictly above the current bound.
func (inc *incumbent) offer(task int64, ends []int, masks []uint64, met mapping.Metrics) {
	if inc.objOf(met) > inc.bound.load() {
		return
	}
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.found {
		c := inc.cmp(met, inc.met)
		if c > 0 || (c == 0 && task >= inc.task) {
			return
		}
	}
	inc.found = true
	inc.met = met
	inc.task = task
	inc.nEnds = copy(inc.ends, ends)
	copy(inc.masks, masks)
	inc.bound.min(inc.objOf(met))
}

// result materializes the winning candidate.
func (inc *incumbent) result(ev *mapping.Evaluator) (Result, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if !inc.found {
		return Result{}, ErrInfeasible
	}
	var mp *mapping.Mapping
	if inc.stride == 1 {
		mp = ev.ToMapping(inc.ends[:inc.nEnds], inc.masks[:inc.nEnds])
	} else {
		mp = ev.ToMappingW(inc.ends[:inc.nEnds], inc.masks[:inc.nEnds*inc.stride])
	}
	return Result{Mapping: mp, Metrics: inc.met}, nil
}

// latencyStrictlyWorse reports lb > bound beyond the shared latency
// tolerance, i.e. the subtree is provably worse and safe to cut even in
// the presence of float accumulation ties.
func latencyStrictlyWorse(lb, bound float64) bool {
	return lb > bound+latencyTol*math.Max(1, math.Abs(bound))
}

// fillMaskedMapping converts a boundary representation (flat masks,
// stride words per interval) into dst without allocating: dst's slices
// are resliced and the replica ids written into procBuf (which must hold
// at least m ints).
func fillMaskedMapping(dst *mapping.Mapping, procBuf []int, ends []int, masks []uint64, stride int) *mapping.Mapping {
	dst.Intervals = dst.Intervals[:0]
	dst.Alloc = dst.Alloc[:0]
	first := 0
	used := 0
	for j, end := range ends {
		dst.Intervals = append(dst.Intervals, mapping.Interval{First: first, Last: end})
		row := bitset.Set(masks[j*stride : (j+1)*stride])
		out := row.AppendBits(procBuf[used:used])
		used += len(out)
		dst.Alloc = append(dst.Alloc, out[:len(out):len(out)])
		first = end + 1
	}
	return dst
}
