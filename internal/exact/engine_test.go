package exact

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/frontier"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// Reference implementations: the original unpruned slice-based solvers on
// ForEachMapping, against which the bitmask engine is property-tested.

func refMinLatency(p *pipeline.Pipeline, pl *platform.Platform, opts Options) (Result, error) {
	return minLatencyIntervalWide(p, pl, opts)
}

func refMinFPUnderLatency(p *pipeline.Pipeline, pl *platform.Platform, maxLatency float64, opts Options) (Result, error) {
	opts.Replication = true
	return minFPUnderLatencyWide(p, pl, maxLatency, opts)
}

func refMinLatencyUnderFP(p *pipeline.Pipeline, pl *platform.Platform, maxFP float64, opts Options) (Result, error) {
	opts.Replication = true
	return minLatencyUnderFPWide(p, pl, maxFP, opts)
}

func refParetoFront(p *pipeline.Pipeline, pl *platform.Platform, opts Options) ([]Result, error) {
	opts.Replication = true
	return paretoFrontWide(p, pl, opts)
}

func randomInstance(seed int64) (*pipeline.Pipeline, *platform.Platform) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(6)
	m := 1 + rng.Intn(5)
	p := pipeline.Random(rng, n, 1, 10, 0, 10)
	if rng.Intn(2) == 0 {
		return p, platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 1+rng.Float64()*4)
	}
	return p, platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)
}

// canonicalKey encodes a mapping's boundary representation for set
// comparison.
func canonicalKey(mp *mapping.Mapping) string {
	key := ""
	for j, iv := range mp.Intervals {
		var mask uint64
		for _, u := range mp.Alloc[j] {
			mask |= 1 << uint(u)
		}
		key += fmt.Sprintf("%d:%x;", iv.Last, mask)
	}
	return key
}

// TestMaskedEnumerationVisitsSameSet: ForEachMappingParallel must visit
// exactly the mapping set of the reference ForEachMapping, for both
// replication settings and several worker counts.
func TestMaskedEnumerationVisitsSameSet(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		for _, repl := range []bool{false, true} {
			want := map[string]int{}
			err := ForEachMapping(n, m, Options{Replication: repl}, func(mp *mapping.Mapping) bool {
				want[canonicalKey(mp)]++
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				got := make([]map[string]int, workers)
				err := ForEachMappingParallel(n, m, Options{Replication: repl, Workers: workers},
					func(w int) func(int64, *mapping.Mapping) bool {
						got[w] = map[string]int{}
						return func(_ int64, mp *mapping.Mapping) bool {
							if err := mp.Validate(n, m); err != nil {
								t.Errorf("invalid enumerated mapping: %v", err)
							}
							got[w][canonicalKey(mp)]++
							return true
						}
					})
				if err != nil {
					t.Fatal(err)
				}
				merged := map[string]int{}
				for _, g := range got {
					if g == nil {
						continue
					}
					for k, c := range g {
						merged[k] += c
					}
				}
				if len(merged) != len(want) {
					t.Fatalf("n=%d m=%d repl=%v workers=%d: visited %d distinct mappings, want %d",
						n, m, repl, workers, len(merged), len(want))
				}
				for k, c := range want {
					if merged[k] != c {
						t.Fatalf("n=%d m=%d repl=%v: mapping %s visited %d times, want %d", n, m, repl, k, merged[k], c)
					}
				}
			}
		}
	}
}

// TestSolversMatchReference: all four solvers must return bitwise-identical
// metrics to the unpruned reference on randomized instances, for both a
// sequential and a parallel worker count.
func TestSolversMatchReference(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		p, pl := randomInstance(seed)
		rng := rand.New(rand.NewSource(seed + 500))
		L := 1 + rng.Float64()*40
		F := rng.Float64()

		for _, workers := range []int{1, 4} {
			opts := Options{Workers: workers}

			got, gotErr := MinLatencyInterval(p, pl, opts)
			want, wantErr := refMinLatency(p, pl, Options{})
			checkSame(t, seed, "MinLatencyInterval", got, gotErr, want, wantErr, func(a, b mapping.Metrics) bool {
				return a.Latency == b.Latency
			})

			got, gotErr = MinFPUnderLatency(p, pl, L, opts)
			want, wantErr = refMinFPUnderLatency(p, pl, L, Options{})
			checkSame(t, seed, "MinFPUnderLatency", got, gotErr, want, wantErr, func(a, b mapping.Metrics) bool {
				return a == b
			})

			got, gotErr = MinLatencyUnderFP(p, pl, F, opts)
			want, wantErr = refMinLatencyUnderFP(p, pl, F, Options{})
			checkSame(t, seed, "MinLatencyUnderFP", got, gotErr, want, wantErr, func(a, b mapping.Metrics) bool {
				return a == b
			})
		}
	}
}

func checkSame(t *testing.T, seed int64, name string, got Result, gotErr error, want Result, wantErr error, eq func(a, b mapping.Metrics) bool) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("seed %d %s: err = %v, reference err = %v", seed, name, gotErr, wantErr)
	}
	if gotErr != nil {
		if !errors.Is(gotErr, ErrInfeasible) || !errors.Is(wantErr, ErrInfeasible) {
			t.Fatalf("seed %d %s: unexpected errors %v / %v", seed, name, gotErr, wantErr)
		}
		return
	}
	if !eq(got.Metrics, want.Metrics) {
		t.Fatalf("seed %d %s: metrics %+v, reference %+v", seed, name, got.Metrics, want.Metrics)
	}
}

// TestParetoFrontMatchesReference: the engine's front must equal the
// reference front's metric sequence bitwise, for every worker count.
func TestParetoFrontMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p, pl := randomInstance(seed)
		want, err := refParetoFront(p, pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			got, err := ParetoFront(p, pl, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d workers %d: front size %d, reference %d", seed, workers, len(got), len(want))
			}
			for i := range got {
				if got[i].Metrics != want[i].Metrics {
					t.Fatalf("seed %d workers %d: front[%d] = %+v, reference %+v",
						seed, workers, i, got[i].Metrics, want[i].Metrics)
				}
				if err := got[i].Mapping.Validate(p.NumStages(), pl.NumProcs()); err != nil {
					t.Fatalf("seed %d: invalid front mapping: %v", seed, err)
				}
				met, err := mapping.Evaluate(p, pl, got[i].Mapping)
				if err != nil || met != got[i].Metrics {
					t.Fatalf("seed %d: front mapping does not reproduce its metrics (%v, %v)", seed, met, err)
				}
			}
		}
	}
}

// TestSolverDeterminism: repeated parallel runs return the identical
// mapping, not just identical metrics.
func TestSolverDeterminism(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p, pl := randomInstance(seed)
		first, err := MinLatencyUnderFP(p, pl, 0.9, Options{Workers: 4})
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			again, err := MinLatencyUnderFP(p, pl, 0.9, Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if again.Mapping.String() != first.Mapping.String() {
				t.Fatalf("seed %d: nondeterministic result: %s vs %s", seed, again.Mapping, first.Mapping)
			}
		}
	}
}

// TestSolverBudget: the shared budget aborts the parallel enumeration
// with ErrBudget.
func TestSolverBudget(t *testing.T) {
	p := pipeline.Uniform(5, 1, 1)
	pl, _ := platform.NewFullyHomogeneous(5, 1, 1, 0.5)
	if _, err := MinFPUnderLatency(p, pl, math.Inf(1), Options{MaxEnum: 3}); !errors.Is(err, ErrBudget) {
		t.Errorf("MinFPUnderLatency err = %v, want ErrBudget", err)
	}
	if err := ForEachMappingParallel(4, 4, Options{Replication: true, MaxEnum: 3},
		func(int) func(int64, *mapping.Mapping) bool {
			return func(int64, *mapping.Mapping) bool { return true }
		}); !errors.Is(err, ErrBudget) {
		t.Errorf("ForEachMappingParallel err = %v, want ErrBudget", err)
	}
}

// TestEngineBudgetAllowsLargerInstances: branch-and-bound pruning lets a
// budget that full enumeration would blow through complete successfully.
func TestEngineBudgetAllowsLargerInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := pipeline.Random(rng, 4, 1, 10, 1, 10)
	pl := platform.RandomCommHomogeneous(rng, 6, 1, 10, 0.1, 0.9, 2)
	// Count the full space first.
	total := int64(0)
	if err := ForEachMapping(4, 6, Options{Replication: true, MaxEnum: math.MaxInt64}, func(*mapping.Mapping) bool {
		total++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	budget := total / 4
	if _, err := MinLatencyUnderFP(p, pl, 0.5, Options{MaxEnum: budget}); err != nil {
		t.Fatalf("pruned search exceeded a budget of %d (full space %d): %v", budget, total, err)
	}
}

// TestForEachMappingParallelEarlyStop: a visitor returning false stops the
// whole enumeration without error.
func TestForEachMappingParallelEarlyStop(t *testing.T) {
	count := 0
	err := ForEachMappingParallel(3, 3, Options{Workers: 1}, func(int) func(int64, *mapping.Mapping) bool {
		return func(int64, *mapping.Mapping) bool {
			count++
			return count < 3
		}
	})
	if err != nil {
		t.Fatalf("early stop returned error: %v", err)
	}
	if count != 3 {
		t.Errorf("visited %d mappings after stop, want 3", count)
	}
}

// TestEnumerationZeroAllocs: the engine's inner loop — enumeration plus
// evaluation, with no survivors recorded — must not allocate per node.
func TestEnumerationZeroAllocs(t *testing.T) {
	p := pipeline.MustNew([]float64{2, 5, 3}, []float64{1, 2, 1, 1})
	rng := rand.New(rand.NewSource(11))
	pl := platform.RandomCommHomogeneous(rng, 4, 1, 10, 0.1, 0.9, 2)
	ev, err := mapping.NewEvaluator(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	g, err := newEngine(ev, p.NumStages(), pl.NumProcs(), Options{Replication: true})
	if err != nil {
		t.Fatal(err)
	}
	visited := 0
	visit := func(int64, []int, []uint64, mapping.Metrics) bool {
		visited++
		return true
	}
	// One warm-up pass (worker scratch is allocated per run), then assert
	// the per-mapping cost: re-running the whole enumeration must spend a
	// small constant number of allocations (the worker's scratch slices),
	// far below one per visited mapping.
	if err := g.run(1, func(int) (pruneFunc, visitFunc) { return nil, visit }); err != nil {
		t.Fatal(err)
	}
	perRun := testing.AllocsPerRun(5, func() {
		g2, err := newEngine(ev, p.NumStages(), pl.NumProcs(), Options{Replication: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := g2.run(1, func(int) (pruneFunc, visitFunc) { return nil, visit }); err != nil {
			t.Fatal(err)
		}
	})
	if visited == 0 {
		t.Fatal("no mappings visited")
	}
	// engine struct + 4 scratch slices + closures: anything linear in the
	// visited count would be hundreds of allocations.
	if perRun > 12 {
		t.Errorf("enumeration allocates %.1f objects per full run, want a small constant (scratch only)", perRun)
	}
}

// TestSortResultsByLatency covers the sort.Slice replacement.
func TestSortResultsByLatency(t *testing.T) {
	rs := []Result{
		{Metrics: mapping.Metrics{Latency: 3}},
		{Metrics: mapping.Metrics{Latency: 1}},
		{Metrics: mapping.Metrics{Latency: 2}},
	}
	sortResultsByLatency(rs)
	if !sort.SliceIsSorted(rs, func(i, j int) bool { return rs[i].Metrics.Latency < rs[j].Metrics.Latency }) {
		t.Errorf("results not sorted: %v", rs)
	}
}

// TestFrontDominatesPointAgainstFront checks the pruning query the Pareto
// solver relies on.
func TestFrontDominatesPointAgainstFront(t *testing.T) {
	f := &frontier.Front{}
	f.Insert(mapping.Metrics{Latency: 1, FailureProb: 0.9}, nil)
	f.Insert(mapping.Metrics{Latency: 2, FailureProb: 0.5}, nil)
	f.Insert(mapping.Metrics{Latency: 4, FailureProb: 0.1}, nil)
	cases := []struct {
		lat, fp float64
		want    bool
	}{
		{0.5, 0.95, false}, // cheaper than everything on the front
		{1, 0.9, true},     // equal to an entry
		{3, 0.6, true},     // dominated by (2, 0.5)
		{3, 0.4, false},    // better FP than anything at ≤ 3
		{5, 0.05, false},   // better FP than the whole front
		{5, 0.2, true},     // dominated by (4, 0.1)
	}
	for _, c := range cases {
		if got := f.DominatesPoint(c.lat, c.fp); got != c.want {
			t.Errorf("DominatesPoint(%g, %g) = %v, want %v", c.lat, c.fp, got, c.want)
		}
	}
}

// TestParetoRepresentativesDeterministic: on a tie-heavy homogeneous
// platform (any equal-size replica set gives identical metrics), the
// representative mapping of every front point must be identical across
// worker counts — the lowest-task candidate wins, not whichever worker
// inserted first.
func TestParetoRepresentativesDeterministic(t *testing.T) {
	p := pipeline.Uniform(3, 2, 1)
	pl, _ := platform.NewFullyHomogeneous(4, 1, 1, 0.5)
	want, err := ParetoFront(p, pl, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			got, err := ParetoFront(p, pl, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("workers=%d: front size %d, want %d", workers, len(got), len(want))
			}
			for i := range got {
				if got[i].Mapping.String() != want[i].Mapping.String() {
					t.Fatalf("workers=%d: front[%d] representative %s, want %s",
						workers, i, got[i].Mapping, want[i].Mapping)
				}
			}
		}
	}
}

// TestReplicationBeyondNarrowTaskLimit: replication solvers at m = 63..65
// cross onto the wide multi-word search (the narrow path's task indices
// only pack up to m = 62); an enumeration budget must still trip cleanly
// there, and the latency solver must succeed outright.
func TestReplicationBeyondNarrowTaskLimit(t *testing.T) {
	p := pipeline.Uniform(1, 1, 1)
	for _, m := range []int{63, 64, 65} {
		pl, err := platform.NewFullyHomogeneous(m, 1, 1, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := MinFPUnderLatency(p, pl, math.Inf(1), Options{MaxEnum: 10}); !errors.Is(err, ErrBudget) {
			t.Errorf("m=%d: err = %v, want ErrBudget via the wide search", m, err)
		}
		if err := ForEachMappingParallel(1, m, Options{Replication: true, MaxEnum: 10},
			func(int) func(int64, *mapping.Mapping) bool {
				return func(int64, *mapping.Mapping) bool { return true }
			}); !errors.Is(err, ErrBudget) {
			t.Errorf("m=%d: ForEachMappingParallel err = %v, want ErrBudget via the wide search", m, err)
		}
		// Without replication the m-singleton space is tiny for every
		// representation: the narrow registers cover m ≤ 64, the wide
		// search everything past that.
		if _, err := MinLatencyInterval(p, pl, Options{}); err != nil {
			t.Errorf("m=%d: MinLatencyInterval err = %v, want success", m, err)
		}
	}
}
