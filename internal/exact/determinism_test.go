package exact

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// This file pins the shared-incumbent determinism contract of ISSUE 10:
// the returned mapping AND metrics must be bitwise-identical for every
// worker count — with and without a (live, unfired) cancellation context,
// with and without a suffix memo — because incumbent pruning is strict and
// equal-metric candidates resolve by task order, never by scheduling.
// The tests run under -race in CI, where stale bound reads and racing
// offer calls are exercised for real.

// workerCounts returns the deduplicated worker ladder {1, 4, GOMAXPROCS}.
func workerCounts() []int {
	ws := []int{1, 4, runtime.GOMAXPROCS(0)}
	out := ws[:0]
	seen := map[int]bool{}
	for _, w := range ws {
		if w > 0 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// resultKey captures a solver answer for bitwise comparison: metrics
// compared with ==, the mapping by its canonical rendering.
func resultKey(r Result) (mapping.Metrics, string) {
	s := ""
	if r.Mapping != nil {
		s = r.Mapping.String()
	}
	return r.Metrics, s
}

func checkBitwiseSame(t *testing.T, label string, base Result, baseErr error, got Result, gotErr error) {
	t.Helper()
	if (baseErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: err = %v, baseline err = %v", label, gotErr, baseErr)
	}
	if baseErr != nil {
		if !errors.Is(gotErr, ErrInfeasible) || !errors.Is(baseErr, ErrInfeasible) {
			t.Fatalf("%s: unexpected errors %v / %v", label, gotErr, baseErr)
		}
		return
	}
	bm, bs := resultKey(base)
	gm, gs := resultKey(got)
	if bm != gm {
		t.Fatalf("%s: metrics %+v, baseline %+v", label, gm, bm)
	}
	if bs != gs {
		t.Fatalf("%s: mapping %s, baseline %s", label, gs, bs)
	}
}

// TestSharedIncumbentDeterminism: every solver must return the bitwise
// answer of the sequential run for Workers ∈ {1, 4, GOMAXPROCS}, both
// without a context and under a live cancellation context that never
// fires.
func TestSharedIncumbentDeterminism(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p, pl := randomInstance(seed)
		rng := rand.New(rand.NewSource(seed + 900))
		L := 1 + rng.Float64()*40
		F := rng.Float64()

		type solver struct {
			name string
			run  func(opts Options) (Result, error)
		}
		solvers := []solver{
			{"MinLatencyInterval", func(o Options) (Result, error) { return MinLatencyInterval(p, pl, o) }},
			{"MinFPUnderLatency", func(o Options) (Result, error) { return MinFPUnderLatency(p, pl, L, o) }},
			{"MinLatencyUnderFP", func(o Options) (Result, error) { return MinLatencyUnderFP(p, pl, F, o) }},
		}
		for _, sv := range solvers {
			base, baseErr := sv.run(Options{Workers: 1})
			for _, workers := range workerCounts() {
				got, gotErr := sv.run(Options{Workers: workers})
				checkBitwiseSame(t, sv.name, base, baseErr, got, gotErr)

				ctx, cancel := context.WithCancel(context.Background())
				got, gotErr = sv.run(Options{Workers: workers, Ctx: ctx})
				cancel()
				checkBitwiseSame(t, sv.name+" (live ctx)", base, baseErr, got, gotErr)
			}
		}

		baseFront, err := ParetoFront(p, pl, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range workerCounts() {
			front, err := ParetoFront(p, pl, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(front) != len(baseFront) {
				t.Fatalf("seed %d workers %d: front size %d, sequential %d", seed, workers, len(front), len(baseFront))
			}
			for i := range front {
				if front[i].Metrics != baseFront[i].Metrics || front[i].Mapping.String() != baseFront[i].Mapping.String() {
					t.Fatalf("seed %d workers %d: front[%d] differs from the sequential run", seed, workers, i)
				}
			}
		}
	}
}

// quantizedCommHom builds a communication-homogeneous platform whose
// speeds fold into exactly `classes` values, so a SuffixMemo exists even
// at wide processor counts.
func quantizedCommHom(rng *rand.Rand, m, classes int) *platform.Platform {
	pl := platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 2)
	speeds := make([]float64, classes)
	for c := range speeds {
		speeds[c] = 1 + rng.Float64()*9
	}
	for u := range pl.Speed {
		pl.Speed[u] = speeds[u%classes]
	}
	return pl
}

// TestSolverEquivalenceWide: at m ∈ {8, 64, 80, 128} — spanning the
// narrow search, both m=64 boundaries and the wide stride-word search —
// MinLatencyInterval must match the unpruned slice reference's optimum
// bitwise for every worker count, on fully heterogeneous and on
// memo-carrying communication-homogeneous platforms. The reference
// breaks latency ties differently, so the objective value is compared
// against it while the mapping itself is pinned engine-vs-engine: every
// worker count and the memo-on arm must reproduce the sequential
// engine's answer bit for bit.
func TestSolverEquivalenceWide(t *testing.T) {
	for _, m := range []int{8, 64, 80, 128} {
		n := 3
		if m >= 64 {
			n = 2 // keep the exhaustive reference tractable (O(m^n) slice evals)
		}
		rng := rand.New(rand.NewSource(int64(100*n + m)))
		p := pipeline.Random(rng, n, 1, 10, 1, 10)

		het := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)
		ref, err := refMinLatency(p, het, Options{})
		if err != nil {
			t.Fatal(err)
		}
		base, baseErr := MinLatencyInterval(p, het, Options{Workers: 1})
		if baseErr != nil || base.Metrics.Latency != ref.Metrics.Latency {
			t.Fatalf("m=%d het: latency %v (err %v), reference %v", m, base.Metrics.Latency, baseErr, ref.Metrics.Latency)
		}
		for _, workers := range workerCounts() {
			got, gotErr := MinLatencyInterval(p, het, Options{Workers: workers})
			checkBitwiseSame(t, "het", base, baseErr, got, gotErr)
		}

		hom := quantizedCommHom(rng, m, 3)
		sm := NewSuffixMemo(p, hom, 0)
		if sm == nil {
			t.Fatalf("m=%d: quantized comm-hom platform has no memo", m)
		}
		ref, err = refMinLatency(p, hom, Options{})
		if err != nil {
			t.Fatal(err)
		}
		base, baseErr = MinLatencyInterval(p, hom, Options{Workers: 1})
		if baseErr != nil || base.Metrics.Latency != ref.Metrics.Latency {
			t.Fatalf("m=%d commHom: latency %v (err %v), reference %v", m, base.Metrics.Latency, baseErr, ref.Metrics.Latency)
		}
		for _, workers := range workerCounts() {
			got, gotErr := MinLatencyInterval(p, hom, Options{Workers: workers})
			checkBitwiseSame(t, "commHom", base, baseErr, got, gotErr)
			got, gotErr = MinLatencyInterval(p, hom, Options{Workers: workers, SuffixMemo: sm})
			checkBitwiseSame(t, "commHom+memo", base, baseErr, got, gotErr)
		}
	}
}

// TestSuffixMemoPreservesSolverOutputs: attaching a memo must not change
// any solver's answer by a single bit — memoized tail bounds sharpen
// pruning but pruning stays strict.
func TestSuffixMemoPreservesSolverOutputs(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		p := pipeline.Random(rng, n, 1, 10, 0, 10)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 1+rng.Float64()*4)
		sm := NewSuffixMemo(p, pl, 0)
		if sm == nil {
			t.Fatalf("seed %d: no memo", seed)
		}
		L := 1 + rng.Float64()*40
		F := rng.Float64()
		type solver struct {
			name string
			run  func(opts Options) (Result, error)
		}
		solvers := []solver{
			{"MinLatencyInterval", func(o Options) (Result, error) { return MinLatencyInterval(p, pl, o) }},
			{"MinFPUnderLatency", func(o Options) (Result, error) { return MinFPUnderLatency(p, pl, L, o) }},
			{"MinLatencyUnderFP", func(o Options) (Result, error) { return MinLatencyUnderFP(p, pl, F, o) }},
		}
		for _, sv := range solvers {
			for _, workers := range []int{1, 4} {
				base, baseErr := sv.run(Options{Workers: workers})
				got, gotErr := sv.run(Options{Workers: workers, SuffixMemo: sm})
				checkBitwiseSame(t, sv.name+" memo", base, baseErr, got, gotErr)
			}
		}
		baseFront, err := ParetoFront(p, pl, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		memoFront, err := ParetoFront(p, pl, Options{Workers: 4, SuffixMemo: sm})
		if err != nil {
			t.Fatal(err)
		}
		if len(baseFront) != len(memoFront) {
			t.Fatalf("seed %d: memo front size %d, baseline %d", seed, len(memoFront), len(baseFront))
		}
		for i := range baseFront {
			if baseFront[i].Metrics != memoFront[i].Metrics {
				t.Fatalf("seed %d: memo front[%d] = %+v, baseline %+v", seed, i, memoFront[i].Metrics, baseFront[i].Metrics)
			}
		}
	}
}

// TestDeterminismUnderCancellation: a mid-run cancellation may truncate
// the answer, but whatever comes back must be a valid feasible mapping
// that reproduces its reported metrics, for every worker count.
func TestDeterminismUnderCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, m := 8, 10
	p := pipeline.Random(rng, n, 1, 10, 1, 10)
	pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)
	for _, workers := range workerCounts() {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Microsecond)
		res, err := MinLatencyInterval(p, pl, Options{Workers: workers, Ctx: ctx})
		cancel()
		if err == nil {
			continue // finished before the deadline — nothing to check
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers %d: err = %v, want ErrCanceled", workers, err)
		}
		if res.Mapping == nil {
			continue // canceled before any incumbent
		}
		if verr := res.Mapping.Validate(n, m); verr != nil {
			t.Fatalf("workers %d: canceled result invalid: %v", workers, verr)
		}
		met, merr := mapping.Evaluate(p, pl, res.Mapping)
		if merr != nil || met != res.Metrics {
			t.Fatalf("workers %d: canceled result does not reproduce its metrics (%+v vs %+v, %v)",
				workers, met, res.Metrics, merr)
		}
	}
}
