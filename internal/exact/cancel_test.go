package exact

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/platform"
)

// bigHetInstance is far beyond what enumerates in milliseconds: n=12
// stages on m=13 fully heterogeneous processors with replication.
func bigHetInstance(t *testing.T) (*pipeline.Pipeline, *platform.Platform) {
	t.Helper()
	n, m := 12, 13
	w := make([]float64, n)
	delta := make([]float64, n+1)
	for i := range w {
		w[i] = float64(3 + i)
	}
	for i := range delta {
		delta[i] = float64(1 + i%2)
	}
	p, err := pipeline.New(w, delta)
	if err != nil {
		t.Fatal(err)
	}
	speed := make([]float64, m)
	fp := make([]float64, m)
	bIn := make([]float64, m)
	bOut := make([]float64, m)
	b := make([][]float64, m)
	for u := 0; u < m; u++ {
		speed[u] = 1 + float64(u)
		fp[u] = 0.1 + 0.02*float64(u)
		bIn[u] = 2
		bOut[u] = 3
		b[u] = make([]float64, m)
		for v := 0; v < m; v++ {
			if u != v {
				b[u][v] = 1 + 0.1*float64(u)
			}
		}
	}
	pl, err := platform.NewFullyHeterogeneous(speed, fp, b, bIn, bOut)
	if err != nil {
		t.Fatal(err)
	}
	return p, pl
}

func TestCancelReturnsPromptlyWithIncumbent(t *testing.T) {
	p, pl := bigHetInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := MinFPUnderLatency(p, pl, 1e9, Options{MaxEnum: 1 << 62, Ctx: ctx})
	elapsed := time.Since(start)
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancelled enumeration took %v, want well under 500ms", elapsed)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err must also wrap context.Canceled: %v", err)
	}
	// 20ms of enumeration has certainly visited complete mappings: the
	// incumbent must be surfaced as best-so-far.
	if res.Mapping == nil {
		t.Error("cancelled search should return its incumbent")
	}
}

func TestPreCancelledContextAbortsBeforeWork(t *testing.T) {
	p, pl := bigHetInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := MinFPUnderLatency(p, pl, 1e9, Options{MaxEnum: 1 << 62, Ctx: ctx})
	if since := time.Since(start); since > 100*time.Millisecond {
		t.Errorf("pre-cancelled enumeration took %v, want < 100ms", since)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestDeadlineExceededWrapsThrough(t *testing.T) {
	p, pl := bigHetInstance(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := MinLatencyUnderFP(p, pl, 1, Options{MaxEnum: 1 << 62, Ctx: ctx})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want ErrCanceled wrapping context.DeadlineExceeded", err)
	}
}

func TestUncancelledContextDoesNotPerturbResults(t *testing.T) {
	p, pl := fig5Like(t)
	plain, err := MinFPUnderLatency(p, pl, 25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := MinFPUnderLatency(p, pl, 25, Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != withCtx.Metrics || plain.Mapping.String() != withCtx.Mapping.String() {
		t.Errorf("context plumbing changed the result: %+v vs %+v", plain, withCtx)
	}
}

// fig5Like is a small CommHom+FailureHet instance solvable in
// milliseconds.
func fig5Like(t *testing.T) (*pipeline.Pipeline, *platform.Platform) {
	t.Helper()
	p, err := pipeline.New([]float64{1, 100}, []float64{10, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	speeds := []float64{1}
	fps := []float64{0.1}
	for i := 0; i < 7; i++ {
		speeds = append(speeds, 100)
		fps = append(fps, 0.8)
	}
	pl, err := platform.NewCommHomogeneous(speeds, fps, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p, pl
}
