package exact

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// Tests for the wide (multi-word bitset) search of enginewide.go. The
// strategy is two-pronged: (1) force the wide path onto small instances
// where the slice reference is exhaustively enumerable, proving the
// search structure (visit set, pruning, tie-breaks) equivalent for all
// four solvers; (2) run genuinely wide platforms (m ∈ {80, 128}, replica
// ids beyond bit 64) where the singleton-replica space is still small
// enough for the reference, proving the multi-word arithmetic end to end.

func forceWide(opts Options) Options {
	opts.forceWide = true
	return opts
}

// TestForcedWideVisitsSameSet: the wide enumeration must visit exactly
// the reference mapping set, for both replication settings and several
// worker counts (mirror of TestMaskedEnumerationVisitsSameSet).
func TestForcedWideVisitsSameSet(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		for _, repl := range []bool{false, true} {
			want := map[string]int{}
			err := ForEachMapping(n, m, Options{Replication: repl}, func(mp *mapping.Mapping) bool {
				want[mp.String()]++
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				got := make([]map[string]int, workers)
				err := ForEachMappingParallel(n, m, forceWide(Options{Replication: repl, Workers: workers}),
					func(w int) func(int64, *mapping.Mapping) bool {
						got[w] = map[string]int{}
						return func(_ int64, mp *mapping.Mapping) bool {
							if err := mp.Validate(n, m); err != nil {
								t.Errorf("invalid enumerated mapping: %v", err)
							}
							got[w][mp.String()]++
							return true
						}
					})
				if err != nil {
					t.Fatal(err)
				}
				merged := map[string]int{}
				for _, g := range got {
					for k, c := range g {
						merged[k] += c
					}
				}
				if len(merged) != len(want) {
					t.Fatalf("n=%d m=%d repl=%v workers=%d: visited %d distinct mappings, want %d",
						n, m, repl, workers, len(merged), len(want))
				}
				for k, c := range want {
					if merged[k] != c {
						t.Fatalf("n=%d m=%d repl=%v: mapping %s visited %d times, want %d", n, m, repl, k, merged[k], c)
					}
				}
			}
		}
	}
}

// TestForcedWideSolversMatchReference: all four solvers on the forced
// wide path must return bitwise-identical metrics to the unpruned slice
// reference on randomized instances, sequentially and in parallel.
func TestForcedWideSolversMatchReference(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		p, pl := randomInstance(seed)
		rng := rand.New(rand.NewSource(seed + 900))
		L := 1 + rng.Float64()*40
		F := rng.Float64()

		for _, workers := range []int{1, 4} {
			opts := forceWide(Options{Workers: workers})

			got, gotErr := MinLatencyInterval(p, pl, opts)
			want, wantErr := refMinLatency(p, pl, Options{})
			checkSame(t, seed, "wide MinLatencyInterval", got, gotErr, want, wantErr, func(a, b mapping.Metrics) bool {
				return a.Latency == b.Latency
			})

			got, gotErr = MinFPUnderLatency(p, pl, L, opts)
			want, wantErr = refMinFPUnderLatency(p, pl, L, Options{})
			checkSame(t, seed, "wide MinFPUnderLatency", got, gotErr, want, wantErr, func(a, b mapping.Metrics) bool {
				return a == b
			})

			got, gotErr = MinLatencyUnderFP(p, pl, F, opts)
			want, wantErr = refMinLatencyUnderFP(p, pl, F, Options{})
			checkSame(t, seed, "wide MinLatencyUnderFP", got, gotErr, want, wantErr, func(a, b mapping.Metrics) bool {
				return a == b
			})
		}
	}
}

// TestForcedWideParetoMatchesReference: the wide Pareto front must equal
// the reference front's metric sequence bitwise for every worker count,
// and its representatives must be scheduling-independent.
func TestForcedWideParetoMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p, pl := randomInstance(seed)
		want, err := refParetoFront(p, pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var rep []string
		for _, workers := range []int{1, 4} {
			got, err := ParetoFront(p, pl, forceWide(Options{Workers: workers}))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d workers %d: front size %d, reference %d", seed, workers, len(got), len(want))
			}
			for i := range got {
				if got[i].Metrics != want[i].Metrics {
					t.Fatalf("seed %d workers %d: front[%d] = %+v, reference %+v",
						seed, workers, i, got[i].Metrics, want[i].Metrics)
				}
			}
			if rep == nil {
				for _, r := range got {
					rep = append(rep, r.Mapping.String())
				}
				continue
			}
			for i, r := range got {
				if r.Mapping.String() != rep[i] {
					t.Fatalf("seed %d workers %d: representative front[%d] = %s, want %s",
						seed, workers, i, r.Mapping, rep[i])
				}
			}
		}
	}
}

// widePlatform builds an m-processor platform whose parameters vary per
// processor, so mistakes in high-word replica indexing change metrics.
func widePlatform(t *testing.T, m int, commHom bool, seed int64) *platform.Platform {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	if commHom {
		return platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 2)
	}
	return platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)
}

// TestWideSolverMatchesReferenceM80M128: at m = 80 and m = 128 the
// latency solver (singleton replica sets, so the slice reference stays
// enumerable) must return bitwise-identical metrics to the reference and
// identical mappings for 1, 4 and GOMAXPROCS workers. n = 2 keeps the
// reference's (m-level recursion) × (injective assignment) tree small
// while mappings still use replica ids on both sides of the word
// boundary; TestWideDeterminismDeeperPipeline covers n = 3 engine-only.
func TestWideSolverMatchesReferenceM80M128(t *testing.T) {
	cases := []struct{ n, m int }{{2, 80}, {2, 128}}
	for _, c := range cases {
		for _, commHom := range []bool{true, false} {
			rng := rand.New(rand.NewSource(int64(c.m)))
			p := pipeline.Random(rng, c.n, 1, 10, 0, 10)
			pl := widePlatform(t, c.m, commHom, int64(c.m)+7)
			want, err := refMinLatency(p, pl, Options{MaxEnum: math.MaxInt64})
			if err != nil {
				t.Fatal(err)
			}
			var first Result
			for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				got, err := MinLatencyInterval(p, pl, Options{Workers: workers, MaxEnum: math.MaxInt64})
				if err != nil {
					t.Fatalf("n=%d m=%d commHom=%v workers=%d: %v", c.n, c.m, commHom, workers, err)
				}
				if got.Metrics.Latency != want.Metrics.Latency {
					t.Fatalf("n=%d m=%d commHom=%v workers=%d: latency %v, reference %v",
						c.n, c.m, commHom, workers, got.Metrics.Latency, want.Metrics.Latency)
				}
				if met, err := mapping.Evaluate(p, pl, got.Mapping); err != nil || met != got.Metrics {
					t.Fatalf("n=%d m=%d: returned mapping does not reproduce its metrics (%v, %v)", c.n, c.m, met, err)
				}
				if first.Mapping == nil {
					first = got
				} else if got.Mapping.String() != first.Mapping.String() {
					t.Fatalf("n=%d m=%d commHom=%v workers=%d: nondeterministic mapping %s vs %s",
						c.n, c.m, commHom, workers, got.Mapping, first.Mapping)
				}
			}
		}
	}
}

// TestWideDeterminismDeeperPipeline: at n = 3, m = 80 (≈ half a million
// singleton candidates, too slow for the slice reference) the pruned
// engine must return the identical mapping and metrics for every worker
// count and across repeated runs.
func TestWideDeterminismDeeperPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := pipeline.Random(rng, 3, 1, 10, 0, 10)
	pl := widePlatform(t, 80, false, 42)
	first, err := MinLatencyInterval(p, pl, Options{Workers: 1, MaxEnum: math.MaxInt64})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for rep := 0; rep < 2; rep++ {
			got, err := MinLatencyInterval(p, pl, Options{Workers: workers, MaxEnum: math.MaxInt64})
			if err != nil {
				t.Fatal(err)
			}
			if got.Metrics != first.Metrics || got.Mapping.String() != first.Mapping.String() {
				t.Fatalf("workers=%d rep=%d: %s %+v, want %s %+v",
					workers, rep, got.Mapping, got.Metrics, first.Mapping, first.Metrics)
			}
		}
	}
}

// TestWideEnumerationVisitsSameSetM80: the wide singleton enumeration at
// m = 80 must visit exactly the reference set (replica ids ≥ 64 occur,
// so cross-word iteration is exercised end to end).
func TestWideEnumerationVisitsSameSetM80(t *testing.T) {
	n, m := 2, 80
	want := map[string]bool{}
	if err := ForEachMapping(n, m, Options{MaxEnum: math.MaxInt64}, func(mp *mapping.Mapping) bool {
		want[mp.String()] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sawHigh := false
	merged := map[string]bool{}
	err := ForEachMappingParallel(n, m, Options{Workers: 1, MaxEnum: math.MaxInt64},
		func(int) func(int64, *mapping.Mapping) bool {
			return func(_ int64, mp *mapping.Mapping) bool {
				for _, procs := range mp.Alloc {
					for _, u := range procs {
						if u >= 64 {
							sawHigh = true
						}
					}
				}
				merged[mp.String()] = true
				return true
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(want) {
		t.Fatalf("visited %d distinct mappings, want %d", len(merged), len(want))
	}
	for k := range want {
		if !merged[k] {
			t.Fatalf("mapping %s never visited by the wide enumeration", k)
		}
	}
	if !sawHigh {
		t.Fatal("no replica id ≥ 64 seen: the high words were never exercised")
	}
}

// bigWideHetInstance is bigHetInstance stretched to m = 80: far beyond
// any exhaustible replication space, for cancellation tests on the wide
// path.
func bigWideHetInstance(t *testing.T) (*pipeline.Pipeline, *platform.Platform) {
	t.Helper()
	n, m := 12, 80
	w := make([]float64, n)
	delta := make([]float64, n+1)
	for i := range w {
		w[i] = float64(3 + i)
	}
	for i := range delta {
		delta[i] = float64(1 + i%2)
	}
	p, err := pipeline.New(w, delta)
	if err != nil {
		t.Fatal(err)
	}
	speed := make([]float64, m)
	fp := make([]float64, m)
	bIn := make([]float64, m)
	bOut := make([]float64, m)
	b := make([][]float64, m)
	for u := 0; u < m; u++ {
		speed[u] = 1 + float64(u)
		fp[u] = 0.05 + 0.9*float64(u)/float64(m)
		bIn[u] = 2
		bOut[u] = 3
		b[u] = make([]float64, m)
		for v := 0; v < m; v++ {
			if u != v {
				b[u][v] = 1 + 0.1*float64(u%10)
			}
		}
	}
	pl, err := platform.NewFullyHeterogeneous(speed, fp, b, bIn, bOut)
	if err != nil {
		t.Fatal(err)
	}
	return p, pl
}

// TestWideCancelReturnsPromptlyWithIncumbent mirrors the narrow
// cancellation-promptness test at m = 80: node-level abort, best-so-far
// incumbent surfaced.
func TestWideCancelReturnsPromptlyWithIncumbent(t *testing.T) {
	p, pl := bigWideHetInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := MinFPUnderLatency(p, pl, 1e9, Options{MaxEnum: 1 << 62, Ctx: ctx})
	elapsed := time.Since(start)
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancelled wide enumeration took %v, want well under 500ms", elapsed)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err must also wrap context.Canceled: %v", err)
	}
	if res.Mapping == nil {
		t.Error("cancelled wide search should return its incumbent")
	} else if err := res.Mapping.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		t.Errorf("incumbent invalid: %v", err)
	}
}

// TestWidePreCancelledContextAbortsBeforeWork: a context that is already
// done must stop the wide search before it expands anything.
func TestWidePreCancelledContextAbortsBeforeWork(t *testing.T) {
	p, pl := bigWideHetInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := MinFPUnderLatency(p, pl, 1e9, Options{MaxEnum: 1 << 62, Ctx: ctx})
	if since := time.Since(start); since > 100*time.Millisecond {
		t.Errorf("pre-cancelled wide enumeration took %v, want < 100ms", since)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestWideDeadlineExceededWrapsThrough: deadline errors must round-trip
// through errors.Is on the wide path too.
func TestWideDeadlineExceededWrapsThrough(t *testing.T) {
	p, pl := bigWideHetInstance(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := MinLatencyUnderFP(p, pl, 1, Options{MaxEnum: 1 << 62, Ctx: ctx})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want ErrCanceled wrapping context.DeadlineExceeded", err)
	}
}

// TestWideBudgetTripsAtM128: the shared enumeration budget must abort
// the wide replication search on a space that cannot be exhausted.
func TestWideBudgetTripsAtM128(t *testing.T) {
	p := pipeline.Uniform(2, 1, 1)
	pl, err := platform.NewFullyHomogeneous(128, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MinFPUnderLatency(p, pl, math.Inf(1), Options{MaxEnum: 100}); !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

// TestWideEnumerationZeroAllocsPerNode: the wide inner loop — multi-word
// enumeration plus evaluation at m = 80 — must allocate only the
// per-worker scratch, i.e. 0 allocs per visited mapping.
func TestWideEnumerationZeroAllocsPerNode(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n, m := 2, 80
	p := pipeline.Random(rng, n, 1, 10, 1, 10)
	pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.1, 0.9, 1, 20)
	ev, err := mapping.NewEvaluator(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	visited := 0
	visit := func(int64, []int, []uint64, mapping.Metrics) bool {
		visited++
		return true
	}
	run := func() {
		g, err := newEngine(ev, n, m, Options{MaxEnum: math.MaxInt64})
		if err != nil {
			t.Fatal(err)
		}
		if !g.wide {
			t.Fatal("m=80 engine did not select the wide search")
		}
		if err := g.run(1, func(int) (pruneFunc, visitFunc) { return nil, visit }); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up
	visited = 0
	perRun := testing.AllocsPerRun(5, run)
	if visited == 0 {
		t.Fatal("no mappings visited")
	}
	// Engine struct, fullW, worker scratch slices and closures: a small
	// constant. The > 10⁴ visited mappings must contribute nothing.
	if perRun > 24 {
		t.Errorf("wide enumeration allocates %.1f objects per full run over %d mappings, want a small constant (scratch only)", perRun, visited)
	}
	if perNode := perRun / float64(visited); perNode >= 0.01 {
		t.Errorf("wide inner loop allocates %.4f objects per visited mapping, want 0", perNode)
	}
}
