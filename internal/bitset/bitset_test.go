package bitset

import (
	"math/big"
	"math/rand"
	"testing"
)

// toBig converts a Set to the big integer it encodes.
func toBig(s Set) *big.Int {
	x := new(big.Int)
	for w := len(s) - 1; w >= 0; w-- {
		x.Lsh(x, WordBits)
		x.Or(x, new(big.Int).SetUint64(s[w]))
	}
	return x
}

func randomSet(rng *rand.Rand, m int) Set {
	s := Make(m)
	for i := 0; i < m; i++ {
		if rng.Intn(2) == 0 {
			s.Add(i)
		}
	}
	return s
}

func TestWords(t *testing.T) {
	cases := map[int]int{1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3, 200: 4}
	for m, want := range cases {
		if got := Words(m); got != want {
			t.Errorf("Words(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestBitOpsAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		m := 1 + rng.Intn(200)
		a, b := randomSet(rng, m), randomSet(rng, m)
		ba, bb := toBig(a), toBig(b)

		or := Make(m)
		or.Or(a, b)
		if toBig(or).Cmp(new(big.Int).Or(ba, bb)) != 0 {
			t.Fatalf("m=%d: Or mismatch", m)
		}
		andnot := Make(m)
		andnot.AndNot(a, b)
		if toBig(andnot).Cmp(new(big.Int).AndNot(ba, bb)) != 0 {
			t.Fatalf("m=%d: AndNot mismatch", m)
		}
		and := Make(m)
		and.And(a, b)
		if toBig(and).Cmp(new(big.Int).And(ba, bb)) != 0 {
			t.Fatalf("m=%d: And mismatch", m)
		}
		if got, want := a.Count(), popBig(ba); got != want {
			t.Fatalf("m=%d: Count = %d, want %d", m, got, want)
		}
		if got, want := a.IsZero(), ba.Sign() == 0; got != want {
			t.Fatalf("m=%d: IsZero = %v, want %v", m, got, want)
		}
		if got, want := a.IsSubsetOf(b), new(big.Int).AndNot(ba, bb).Sign() == 0; got != want {
			t.Fatalf("m=%d: IsSubsetOf = %v, want %v", m, got, want)
		}
		if got, want := a.Intersects(b), new(big.Int).And(ba, bb).Sign() != 0; got != want {
			t.Fatalf("m=%d: Intersects = %v, want %v", m, got, want)
		}
		if got, want := a.Equal(b), ba.Cmp(bb) == 0; got != want {
			t.Fatalf("m=%d: Equal = %v, want %v", m, got, want)
		}
	}
}

func popBig(x *big.Int) int {
	c := 0
	for _, w := range x.Bits() {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

func TestFillTestAddRemove(t *testing.T) {
	for _, m := range []int{1, 7, 64, 65, 80, 128, 130} {
		s := Make(m)
		s.Fill(m)
		if s.Count() != m {
			t.Fatalf("m=%d: Fill count %d", m, s.Count())
		}
		for i := 0; i < m; i++ {
			if !s.Test(i) {
				t.Fatalf("m=%d: bit %d unset after Fill", m, i)
			}
		}
		s.Remove(m - 1)
		if s.Test(m-1) || s.Count() != m-1 {
			t.Fatalf("m=%d: Remove failed", m)
		}
		s.Add(m - 1)
		if !s.Test(m - 1) {
			t.Fatalf("m=%d: Add failed", m)
		}
		s.Zero()
		if !s.IsZero() {
			t.Fatalf("m=%d: Zero failed", m)
		}
	}
}

func TestIterationAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(200)
		s := randomSet(rng, m)
		var want []int
		for i := 0; i < m; i++ {
			if s.Test(i) {
				want = append(want, i)
			}
		}
		var got []int
		s.ForEach(func(i int) bool { got = append(got, i); return true })
		if len(got) != len(want) {
			t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ForEach order: got %v, want %v", got, want)
			}
		}
		var next []int
		for i := s.NextOne(0); i >= 0; i = s.NextOne(i + 1) {
			next = append(next, i)
		}
		if len(next) != len(want) {
			t.Fatalf("NextOne visited %d bits, want %d", len(next), len(want))
		}
		for i := range next {
			if next[i] != want[i] {
				t.Fatalf("NextOne order: got %v, want %v", next, want)
			}
		}
		appended := s.AppendBits(nil)
		for i := range appended {
			if appended[i] != want[i] {
				t.Fatalf("AppendBits: got %v, want %v", appended, want)
			}
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := Make(130)
	s.Add(3)
	s.Add(70)
	s.Add(129)
	visited := 0
	s.ForEach(func(int) bool { visited++; return visited < 2 })
	if visited != 2 {
		t.Errorf("early-stopped ForEach visited %d bits, want 2", visited)
	}
}

// TestDecAndEnumeratesAllSubsets: the multi-word subset walk must visit
// every non-empty subset of the mask exactly once, in strictly decreasing
// big-integer order — including masks that span word boundaries.
func TestDecAndEnumeratesAllSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(200)
		mask := Make(m)
		// At most 12 set bits keeps 2^k enumerable while still crossing
		// word boundaries for large m.
		for k := 1 + rng.Intn(12); k > 0; k-- {
			mask.Add(rng.Intn(m))
		}
		bits := mask.Count()
		sub := Make(m)
		sub.Copy(mask)
		prev := toBig(sub)
		seen := map[string]bool{prev.Text(16): true}
		count := 1
		for sub.DecAnd(mask) {
			if !sub.IsSubsetOf(mask) {
				t.Fatalf("m=%d: DecAnd left the mask: %v ⊄ %v", m, sub, mask)
			}
			cur := toBig(sub)
			if cur.Cmp(prev) >= 0 {
				t.Fatalf("m=%d: DecAnd not strictly decreasing: %s then %s", m, prev.Text(16), cur.Text(16))
			}
			key := cur.Text(16)
			if seen[key] {
				t.Fatalf("m=%d: subset %s visited twice", m, key)
			}
			seen[key] = true
			prev = cur
			count++
		}
		if want := 1<<uint(bits) - 1; count != want {
			t.Fatalf("m=%d mask bits=%d: visited %d subsets, want %d", m, bits, count, want)
		}
	}
}

// TestZeroAlloc: the hot-path operations must not allocate.
func TestZeroAlloc(t *testing.T) {
	a, b, dst := Make(130), Make(130), Make(130)
	a.Fill(130)
	b.Add(7)
	b.Add(99)
	allocs := testing.AllocsPerRun(100, func() {
		dst.Or(a, b)
		dst.AndNot(a, b)
		dst.And(a, b)
		dst.Copy(a)
		_ = dst.Count()
		_ = dst.IsZero()
		_ = dst.Equal(a)
		_ = dst.IsSubsetOf(a)
		_ = dst.Intersects(b)
		_ = dst.NextOne(0)
		dst.DecAnd(a)
	})
	if allocs != 0 {
		t.Errorf("hot-path ops allocate %.1f objects per run, want 0", allocs)
	}
}
