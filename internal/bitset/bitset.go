// Package bitset provides the fixed-stride multi-word processor sets
// behind the wide-platform (m > 64) path of the exact solvers. A Set is a
// little-endian []uint64 view — bit i of word w is processor w·64+i — and
// every operation works in place on caller-provided storage, so the
// enumeration hot path stays free of heap allocations: workers allocate
// their word buffers once per run and reslice them per search depth.
//
// The package exists to generalize the uint64 replica masks of
// internal/mapping's Evaluator beyond 64 processors while preserving the
// engine's contracts:
//
//   - iteration (ForEach, NextOne) visits set bits in ascending index
//     order, matching the TrailingZeros order of the single-word path, so
//     accumulated float metrics stay bitwise identical to the slice
//     reference;
//   - DecAnd is the multi-word generalization of the classic subset walk
//     sub = (sub − 1) & free, enumerating the non-empty subsets of free in
//     strictly decreasing big-integer order — a fixed, scheduling-
//     independent order the deterministic tie-breaks rely on;
//   - no operation allocates; Sets are plain slices and compare, copy and
//     combine word-by-word.
//
// Words(m) gives the stride (number of words) for an m-processor
// platform; a stride-1 Set is exactly the legacy uint64 mask.
package bitset

import "math/bits"

// WordBits is the number of bits per word.
const WordBits = 64

// Words returns the number of uint64 words needed for m bits (the stride
// of an m-processor platform).
func Words(m int) int { return (m + WordBits - 1) / WordBits }

// Set is a fixed-width bit set: a little-endian slice of words whose
// length is the platform stride. The zero-length Set is valid and empty.
type Set []uint64

// Make returns a fresh zeroed Set wide enough for m bits.
func Make(m int) Set { return make(Set, Words(m)) }

// Test reports whether bit i is set.
func (s Set) Test(i int) bool { return s[i/WordBits]&(1<<uint(i%WordBits)) != 0 }

// Add sets bit i.
func (s Set) Add(i int) { s[i/WordBits] |= 1 << uint(i%WordBits) }

// Remove clears bit i.
func (s Set) Remove(i int) { s[i/WordBits] &^= 1 << uint(i%WordBits) }

// Zero clears every bit.
func (s Set) Zero() {
	for w := range s {
		s[w] = 0
	}
}

// Fill sets bits [0, m) and clears any tail bits beyond m. m must fit the
// stride.
func (s Set) Fill(m int) {
	for w := range s {
		s[w] = ^uint64(0)
	}
	if tail := m % WordBits; tail != 0 {
		s[len(s)-1] = 1<<uint(tail) - 1
	}
}

// Copy overwrites s with o (same stride).
func (s Set) Copy(o Set) {
	copy(s, o)
}

// Count returns the number of set bits.
func (s Set) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsZero reports whether no bit is set.
func (s Set) IsZero() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o hold the same bits (same stride).
func (s Set) Equal(o Set) bool {
	for w := range s {
		if s[w] != o[w] {
			return false
		}
	}
	return true
}

// Or sets s = a | b (all three the same stride; s may alias a or b).
func (s Set) Or(a, b Set) {
	for w := range s {
		s[w] = a[w] | b[w]
	}
}

// AndNot sets s = a &^ b (all three the same stride; s may alias a or b).
func (s Set) AndNot(a, b Set) {
	for w := range s {
		s[w] = a[w] &^ b[w]
	}
}

// And sets s = a & b (all three the same stride; s may alias a or b).
func (s Set) And(a, b Set) {
	for w := range s {
		s[w] = a[w] & b[w]
	}
}

// IsSubsetOf reports s ⊆ o.
func (s Set) IsSubsetOf(o Set) bool {
	for w := range s {
		if s[w]&^o[w] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports s ∩ o ≠ ∅.
func (s Set) Intersects(o Set) bool {
	for w := range s {
		if s[w]&o[w] != 0 {
			return true
		}
	}
	return false
}

// NextOne returns the smallest set bit index ≥ from, or −1 when none.
func (s Set) NextOne(from int) int {
	if from < 0 {
		from = 0
	}
	w := from / WordBits
	if w >= len(s) {
		return -1
	}
	if cur := s[w] >> uint(from%WordBits); cur != 0 {
		return from + bits.TrailingZeros64(cur)
	}
	for w++; w < len(s); w++ {
		if s[w] != 0 {
			return w*WordBits + bits.TrailingZeros64(s[w])
		}
	}
	return -1
}

// ForEach calls fn with every set bit in ascending order; returning false
// stops the walk early.
func (s Set) ForEach(fn func(i int) bool) {
	for w, word := range s {
		for bm := word; bm != 0; bm &= bm - 1 {
			if !fn(w*WordBits + bits.TrailingZeros64(bm)) {
				return
			}
		}
	}
}

// DecAnd sets s = (s − 1) & mask, treating s as a little-endian
// multi-word integer, and reports whether the result is non-zero. With s
// starting at mask and one visit before each call, the loop
//
//	s.Copy(mask); for { visit(s); if !s.DecAnd(mask) { break } }
//
// visits every non-empty subset of mask exactly once, in strictly
// decreasing integer order — the multi-word generalization of the classic
// sub = (sub − 1) & free subset walk. s must be a non-empty subset of
// mask (so the decrement never borrows out of the top word).
func (s Set) DecAnd(mask Set) bool {
	nonzero := false
	borrow := true
	for w := range s {
		if borrow {
			old := s[w]
			s[w] = old - 1
			borrow = old == 0
		}
		s[w] &= mask[w]
		if s[w] != 0 {
			nonzero = true
		}
	}
	return nonzero
}

// AppendBits appends the indices of the set bits to dst in ascending
// order and returns the extended slice.
func (s Set) AppendBits(dst []int) []int {
	for w, word := range s {
		for bm := word; bm != 0; bm &= bm - 1 {
			dst = append(dst, w*WordBits+bits.TrailingZeros64(bm))
		}
	}
	return dst
}
