package repro_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro"
)

// remapStart solves the session's instance once to obtain the deployed
// mapping a reactive campaign starts from.
func remapStart(t *testing.T, s *repro.Session, req repro.SolveRequest) *repro.Mapping {
	t.Helper()
	res, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return res.Mapping
}

// firstUsed returns the lowest processor id the mapping enrolls.
func firstUsed(m *repro.Mapping) int {
	best := -1
	for _, procs := range m.Alloc {
		for _, u := range procs {
			if best < 0 || u < best {
				best = u
			}
		}
	}
	return best
}

func TestSessionRemapOneShot(t *testing.T) {
	pipe, plat := repro.Fig5Instance()
	s, err := repro.NewSession(pipe, plat)
	if err != nil {
		t.Fatal(err)
	}
	req := repro.SolveRequest{Objective: repro.MinimizeFailureProb, MaxLatency: 22}
	start := remapStart(t, s, req)
	failed := make([]bool, plat.NumProcs())
	failed[firstUsed(start)] = true
	rep, err := s.Remap(context.Background(), start, failed, repro.RemapConfig{
		Objective: repro.MinimizeFailureProb, MaxLatency: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Mapping.Validate(pipe.NumStages(), plat.NumProcs()); err != nil {
		t.Fatalf("remapped mapping invalid: %v", err)
	}
	for _, procs := range rep.Mapping.Alloc {
		for _, u := range procs {
			if failed[u] {
				t.Fatalf("remapped mapping assigns failed processor %d", u)
			}
		}
	}
	met, err := s.Evaluate(rep.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	if met != rep.Metrics {
		t.Errorf("reported metrics %+v disagree with Evaluate %+v", rep.Metrics, met)
	}
}

// TestSessionRunReactiveCampaign drives a multi-failure campaign through
// the root API on a wide platform and checks the acceptance properties:
// the mapping stays valid after every event and warm repairs are far
// cheaper than cold solves (asserted loosely here; BenchmarkRepairM80
// carries the precise evidence).
func TestSessionRunReactiveCampaign(t *testing.T) {
	pipe, plat := rampPipeline(t, 12), hetPlatform(t, 80)
	s, err := repro.NewSession(pipe, plat, repro.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	// Bound the latency at twice the heuristic optimum so the min-FP
	// deployment replicates across several processors.
	lref, err := s.Solve(context.Background(), repro.SolveRequest{Objective: repro.MinimizeLatency})
	if err != nil {
		t.Fatal(err)
	}
	req := repro.SolveRequest{Objective: repro.MinimizeFailureProb, MaxLatency: 2 * lref.Metrics.Latency}

	t0 := time.Now()
	start := remapStart(t, s, req)
	coldSolve := time.Since(t0)

	var victims []int
	seen := map[int]bool{}
	for _, procs := range start.Alloc {
		for _, u := range procs {
			if !seen[u] && len(victims) < 3 {
				seen[u] = true
				victims = append(victims, u)
			}
		}
	}
	if len(victims) < 3 {
		t.Fatalf("deployment enrolls only %d processors", len(victims))
	}
	schedule := repro.ScriptedCrashes(victims...)
	cfg := repro.RemapConfig{Objective: repro.MinimizeFailureProb, MaxLatency: req.MaxLatency}

	reps, err := s.RunReactive(context.Background(), start, schedule, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(schedule) {
		t.Fatalf("got %d repairs for %d events", len(reps), len(schedule))
	}
	failed := make([]bool, plat.NumProcs())
	for i, rep := range reps {
		failed[schedule[i].Proc] = true
		if err := rep.Mapping.Validate(pipe.NumStages(), plat.NumProcs()); err != nil {
			t.Fatalf("repair %d invalid: %v", i, err)
		}
		for _, procs := range rep.Mapping.Alloc {
			for _, u := range procs {
				if failed[u] {
					t.Fatalf("repair %d assigns failed processor %d", i, u)
				}
			}
		}
		t.Logf("repair %d: %s in %v (cold solve %v)", i, rep.Method, rep.Elapsed, coldSolve)
		if !raceEnabled && rep.Elapsed > coldSolve {
			t.Errorf("repair %d slower than the cold solve: %v > %v", i, rep.Elapsed, coldSolve)
		}
	}

	// Determinism: the same campaign replays to identical mappings.
	again, err := s.RunReactive(context.Background(), start, schedule, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reps {
		if reps[i].Mapping.String() != again[i].Mapping.String() {
			t.Fatalf("repair %d differs across identical campaigns", i)
		}
	}
}

func TestSessionRunReactiveRandomSchedule(t *testing.T) {
	pipe, plat := rampPipeline(t, 6), hetPlatform(t, 12)
	s, err := repro.NewSession(pipe, plat)
	if err != nil {
		t.Fatal(err)
	}
	start := remapStart(t, s, repro.SolveRequest{Objective: repro.MinimizeFailureProb})
	schedule := repro.NewRandomFaultSchedule(rand.New(rand.NewSource(4)), plat.NumProcs(), repro.RandomFaultConfig{Events: 16})
	count := 0
	_, err = s.RunReactive(context.Background(), start, schedule, repro.RemapConfig{
		Objective: repro.MinimizeFailureProb,
	}, func(rep repro.RemapResult) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(schedule) {
		t.Fatalf("emit saw %d repairs for %d events", count, len(schedule))
	}
}
