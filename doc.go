// Package repro is a Go implementation of the bi-criteria pipeline
// mapping framework of Benoit, Rehn-Sonigo and Robert, "Optimizing Latency
// and Reliability of Pipeline Workflow Applications" (INRIA RR-6345 /
// IPDPS 2008).
//
// An n-stage pipeline application is mapped onto an m-processor platform
// by partitioning the stages into consecutive intervals and replicating
// each interval on a set of processors. Replication protects against
// processor failures (the application fails only if some interval loses
// every replica) but increases latency (extra serialized communications
// under the one-port model, slowest-replica computation). The library
// provides:
//
//   - the application and platform models with the paper's three platform
//     classes (Fully Homogeneous, Communication Homogeneous, Fully
//     Heterogeneous) crossed with failure homogeneity;
//   - the analytic metrics: the latency formulas Eq. (1) and Eq. (2) and
//     the global failure probability (with a log-space variant that stays
//     exact when probabilities approach the double-precision ulp);
//   - the paper's polynomial algorithms: Theorem 1 (minimum FP), Theorem 2
//     (minimum latency on CommHom), Theorem 4 (minimum-latency general
//     mapping by layered-graph shortest path), and the four bi-criteria
//     Algorithms 1–4 of Theorems 5 and 6;
//   - exact exponential solvers and greedy/annealing heuristics for the
//     classes the paper proves NP-hard (Theorem 7) or leaves open;
//   - executable NP-hardness gadgets (TSP for Theorem 3, 2-PARTITION for
//     Theorem 7) with exact oracles that verify the reductions;
//   - a discrete-event simulator of the platform (one-port communications,
//     crash failures, replica consensus) that reproduces the analytic
//     worst case exactly and validates FP by Monte-Carlo.
//
// The Solve entry point routes a problem to the strongest method for its
// platform class and labels the answer ProvablyOptimal, ExhaustivelyOptimal
// or Heuristic, mirroring the paper's complexity landscape.
//
// # Performance
//
// The exact solvers run on a zero-allocation evaluation engine
// (mapping.Evaluator): per (pipeline, platform) pair it precomputes the
// Eq. (1)/Eq. (2) dispatch, work prefix sums and suffix latency lower
// bounds once, and then scores candidate mappings represented as interval
// end boundaries plus per-interval uint64 processor bitmasks without
// touching the heap and without re-validating (enumerated candidates are
// valid by construction; the public Evaluate path keeps validation). The
// enumeration in internal/exact threads those bitmasks through the
// recursion, prunes subtrees whose latency lower bound or monotone
// failure-probability prefix is provably worse than the incumbent (or a
// constraint), and fans out over worker goroutines by first-interval
// subtree — all four exact solvers and the tri-criteria throughput
// enumeration accept a worker count (SolveOptions.Workers, 0 =
// GOMAXPROCS) and return identical results for every worker count. The
// discrete-event simulator pools its per-run state and keeps its event
// heap free of pointers, so Monte-Carlo sweeps are not GC-bound. Run
// scripts/bench.sh to record the benchmark suite as a BENCH_<date>.json
// snapshot.
//
// Quick start:
//
//	p, _ := repro.NewPipeline([]float64{1, 100}, []float64{10, 1, 0})
//	pl, _ := repro.NewCommHomogeneousPlatform(
//	    []float64{1, 100, 100},   // speeds
//	    []float64{0.1, 0.8, 0.8}, // failure probabilities
//	    1,                        // bandwidth
//	)
//	res, err := repro.Solve(repro.Problem{
//	    Pipeline:   p,
//	    Platform:   pl,
//	    Objective:  repro.MinimizeFailureProb,
//	    MaxLatency: 22,
//	})
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// reproduction of every result in the paper.
package repro
