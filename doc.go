// Package repro is a Go implementation of the bi-criteria pipeline
// mapping framework of Benoit, Rehn-Sonigo and Robert, "Optimizing Latency
// and Reliability of Pipeline Workflow Applications" (INRIA RR-6345 /
// IPDPS 2008).
//
// An n-stage pipeline application is mapped onto an m-processor platform
// by partitioning the stages into consecutive intervals and replicating
// each interval on a set of processors. Replication protects against
// processor failures (the application fails only if some interval loses
// every replica) but increases latency (extra serialized communications
// under the one-port model, slowest-replica computation). The library
// provides:
//
//   - the application and platform models with the paper's three platform
//     classes (Fully Homogeneous, Communication Homogeneous, Fully
//     Heterogeneous) crossed with failure homogeneity;
//   - the analytic metrics: the latency formulas Eq. (1) and Eq. (2) and
//     the global failure probability (with a log-space variant that stays
//     exact when probabilities approach the double-precision ulp);
//   - the paper's polynomial algorithms: Theorem 1 (minimum FP), Theorem 2
//     (minimum latency on CommHom), Theorem 4 (minimum-latency general
//     mapping by layered-graph shortest path), and the four bi-criteria
//     Algorithms 1–4 of Theorems 5 and 6;
//   - exact exponential solvers and greedy/annealing heuristics for the
//     classes the paper proves NP-hard (Theorem 7) or leaves open;
//   - executable NP-hardness gadgets (TSP for Theorem 3, 2-PARTITION for
//     Theorem 7) with exact oracles that verify the reductions;
//   - a discrete-event simulator of the platform (one-port communications,
//     crash failures, replica consensus) that reproduces the analytic
//     worst case exactly and validates FP by Monte-Carlo.
//
// The Solve entry point routes a problem to the strongest method for its
// platform class and labels the answer ProvablyOptimal, ExhaustivelyOptimal
// or Heuristic, mirroring the paper's complexity landscape.
//
// Quick start:
//
//	p, _ := repro.NewPipeline([]float64{1, 100}, []float64{10, 1, 0})
//	pl, _ := repro.NewCommHomogeneousPlatform(
//	    []float64{1, 100, 100},   // speeds
//	    []float64{0.1, 0.8, 0.8}, // failure probabilities
//	    1,                        // bandwidth
//	)
//	res, err := repro.Solve(repro.Problem{
//	    Pipeline:   p,
//	    Platform:   pl,
//	    Objective:  repro.MinimizeFailureProb,
//	    MaxLatency: 22,
//	})
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// reproduction of every result in the paper.
package repro
