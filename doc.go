// Package repro is a Go implementation of the bi-criteria pipeline
// mapping framework of Benoit, Rehn-Sonigo and Robert, "Optimizing Latency
// and Reliability of Pipeline Workflow Applications" (INRIA RR-6345 /
// IPDPS 2008).
//
// An n-stage pipeline application is mapped onto an m-processor platform
// by partitioning the stages into consecutive intervals and replicating
// each interval on a set of processors. Replication protects against
// processor failures (the application fails only if some interval loses
// every replica) but increases latency (extra serialized communications
// under the one-port model, slowest-replica computation). The library
// provides:
//
//   - the application and platform models with the paper's three platform
//     classes (Fully Homogeneous, Communication Homogeneous, Fully
//     Heterogeneous) crossed with failure homogeneity;
//   - the analytic metrics: the latency formulas Eq. (1) and Eq. (2) and
//     the global failure probability (with a log-space variant that stays
//     exact when probabilities approach the double-precision ulp);
//   - the paper's polynomial algorithms: Theorem 1 (minimum FP), Theorem 2
//     (minimum latency on CommHom), Theorem 4 (minimum-latency general
//     mapping by layered-graph shortest path), and the four bi-criteria
//     Algorithms 1–4 of Theorems 5 and 6;
//   - exact exponential solvers and greedy/annealing heuristics for the
//     classes the paper proves NP-hard (Theorem 7) or leaves open;
//   - executable NP-hardness gadgets (TSP for Theorem 3, 2-PARTITION for
//     Theorem 7) with exact oracles that verify the reductions;
//   - a discrete-event simulator of the platform (one-port communications,
//     crash failures, replica consensus) that reproduces the analytic
//     worst case exactly and validates FP by Monte-Carlo.
//
// # Sessions
//
// The primary entry point is the Session: a concurrency-safe solver
// created once per (pipeline, platform) instance via functional options,
// which validates the instance and caches the zero-allocation evaluator
// precomputation so every subsequent call — Solve, Pareto, TriPareto,
// Evaluate, Simulate, MonteCarloCampaign, Bounds, MinPeriod — skips the
// per-call setup:
//
//	pipe, _ := repro.NewPipeline([]float64{1, 100}, []float64{10, 1, 0})
//	plat, _ := repro.NewCommHomogeneousPlatform(
//	    []float64{1, 100, 100},   // speeds
//	    []float64{0.1, 0.8, 0.8}, // failure probabilities
//	    1,                        // bandwidth
//	)
//	sess, err := repro.NewSession(pipe, plat,
//	    repro.WithWorkers(0),                    // exact fan-out: GOMAXPROCS
//	    repro.WithDeadline(200*time.Millisecond), // per-call wall budget
//	    repro.WithSeed(42),                      // stochastic components
//	)
//	res, err := sess.Solve(ctx, repro.SolveRequest{
//	    Objective:  repro.MinimizeFailureProb,
//	    MaxLatency: 22,
//	})
//
// Every long-running Session method takes a context.Context and is
// cancellable: the branch-and-bound enumeration, the annealing and beam
// searches and the Monte-Carlo loops all poll the context and stop within
// one search node of cancellation. A canceled Solve does not fail — it
// returns the best feasible mapping found so far graded repro.Partial (a
// Certainty distinct from ProvablyOptimal / ExhaustivelyOptimal /
// Heuristic), falling back to a microsecond single-interval sweep when
// cancellation struck before the search saw any candidate. Completed
// calls are deterministic for a fixed configuration, including the worker
// count. Sentinel errors flow through the session layer wrapped with %w:
// test them with errors.Is(err, repro.ErrInfeasible) (proven) and
// errors.Is(err, repro.ErrNotFound) (heuristic exhaustion, unproven).
//
// # Legacy per-call surface
//
// The package-level functions (Solve, SolveWithOptions, ParetoFront,
// MonteCarloCampaign, ...) are kept as thin wrappers that build a
// throwaway Session per call under context.Background(). Existing callers
// keep compiling and get identical results; they just pay the evaluator
// rebuild on every call and cannot cancel.
//
// # Serving
//
// cmd/pipeserve exposes the session layer as a JSON-over-HTTP service
// (package repro/serve): POST /v1/solve takes one problem document —
// the same schema cmd/pipemap reads — and POST /v1/solve/batch takes
// {"problems": [...]} and fans the batch out over a bounded worker pool.
// Each request may carry "deadlineMillis", mapped to a context deadline,
// so an over-budget solve answers with its best-so-far mapping and
// "partial": true instead of blocking. Warm sessions live in an LRU keyed
// by the SHA-256 of the instance and its session options; GET /v1/stats
// reports hit rates and GET /healthz liveness.
//
// # Performance
//
// The exact solvers run on a zero-allocation evaluation engine
// (mapping.Evaluator): per (pipeline, platform) pair it precomputes the
// Eq. (1)/Eq. (2) dispatch, work prefix sums and suffix latency lower
// bounds once — once per Session rather than once per call — and then
// scores candidate mappings represented as interval end boundaries plus
// per-interval processor bitmasks without touching the heap — uint64
// masks up to 64 processors, multi-word bit sets (internal/bitset) for
// any wider platform, with identical semantics. The enumeration in
// internal/exact threads those bitmasks through the recursion, prunes
// subtrees whose latency lower bound or monotone failure-probability
// prefix is provably worse than the incumbent (or a constraint), and
// fans out over worker goroutines by first-interval subtree; results are
// identical for every worker count and any platform width. The
// discrete-event simulator pools its per-run state and keeps its event
// heap free of pointers, so Monte-Carlo sweeps are not GC-bound. Run
// scripts/bench.sh to record the benchmark suite as a BENCH_<date>.json
// snapshot; BenchmarkSessionReuse quantifies the session-reuse saving
// against the per-call wrappers.
//
// See examples/ for complete programs (examples/quickstart walks the
// session API end to end) and EXPERIMENTS.md for the reproduction of
// every result in the paper.
package repro
